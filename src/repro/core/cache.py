"""Content-addressed result cache for repeated kernels.

The ROADMAP's north star is a system that serves *repeated* heavy
traffic "as fast as the hardware allows"; the accelerator literature the
paper builds on (Britt & Humble's HPC quantum-accelerator stack,
heterogeneous-datacenter runtimes) puts the answer in the runtime layer:
when the same kernel is dispatched twice, the second dispatch should be
a table lookup, not a re-simulation.  This module is that layer for the
library's expensive kernels -- statevector shot loops, oscillator ODE
sweeps, DMM ensembles:

* :func:`fingerprint` / :func:`cache_key` -- the *content address*: a
  workload is identified by the same fingerprint the
  :class:`~repro.core.resilience.Checkpointer` already computes (kind,
  physics parameters, RNG spawn state) plus the library code version,
  canonically JSON-serialized and hashed.  Two runs share a cache entry
  exactly when that fingerprint says they would produce bit-identical
  results.
* :class:`ResultCache` -- an in-process LRU front (recently used
  entries answered from memory) over an atomic on-disk store (one
  JSON or NPZ file per entry, written via rename, so concurrent runs
  never observe a torn entry).  Every stored entry carries its full
  fingerprint document; a lookup whose key matches but whose
  fingerprint does not (tampering, hash collision, stale directory)
  refuses reuse with a :class:`~repro.core.exceptions.CacheError`
  naming the offending path and both fingerprints.
* :class:`CacheSpec` -- the call-site bundle (cache, kind, meta,
  encode/decode) that :meth:`repro.core.parallel.ParallelMap.map`
  consumes for chunk-level caching: a cached chunk skips dispatch
  entirely and its stored result fills the output slot bit-identically.

Cache invisibility
------------------
Caching must never change *what* a call returns -- only how fast.  The
contract (held by ``tests/core/test_cache.py``'s hypothesis suite):

* cache-on and cache-off runs of the same workload are bit-identical,
* a cold run (misses, then stores) and a warm run (hits) are
  bit-identical,
* cache keys depend only on the workload fingerprint -- never on the
  worker count -- so a run at ``workers=4`` hits the entries a
  ``workers=1`` run stored.

Two rules keep the contract honest.  First, workloads whose RNG
argument cannot be fingerprinted deterministically (``rng=None`` means
fresh OS entropy) are *never* cached -- :func:`spec_for` returns None
for them.  Second, kernel-level (whole-call) caching only engages for
integer-seed RNG arguments (:func:`cacheable_seed`): skipping execution
would leave a caller-supplied generator un-advanced, visibly changing
downstream draws.  Chunk-level caching has no such restriction, because
the per-chunk generators are spawned (advancing the parent identically)
whether or not the chunks then execute.

Failures are never cached: a chunk that raised, timed out, or failed
validation re-executes on the next run, it is not replayed.

Telemetry: ``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
``cache.bytes`` (bytes written to disk) / ``cache.evictions`` (LRU
drops from the memory tier) / ``cache.disk_evictions`` (LRU drops from
the disk tier when a byte budget is set).  Enable a cache process-wide
with the ``REPRO_CACHE_DIR`` environment variable, scoped with
:func:`use_cache`, or per call with the ``cache=`` keyword the kernel
entry points accept; the CLI exposes ``--cache-dir`` / ``--no-cache`` /
``--cache-disk-bytes``.  The disk tier is unbounded by default (CLI
compatibility); give it a byte budget with ``max_disk_bytes=`` or the
``REPRO_CACHE_DISK_BYTES`` environment variable and the
least-recently-used entries are evicted once a store exceeds it.  See
``docs/caching.md``.
"""

import collections
import contextlib
import copy
import hashlib
import json
import os

import numpy as np

from . import telemetry
from .exceptions import CacheError
from .resilience import jsonable

#: Format marker stored in (and required of) every cache entry.
CACHE_FORMAT = "repro-cache-v1"

#: Environment variable enabling a process-wide cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable giving the disk tier a byte budget (integer
#: bytes; unset or empty means unbounded).
CACHE_DISK_BYTES_ENV = "REPRO_CACHE_DISK_BYTES"

#: Environment variable selecting the disk-tier shard depth: entry
#: files live under a ``<key[:depth]>/`` subdirectory of the cache
#: dir.  0 (the default) keeps the historical flat layout.  Sharding
#: exists for multi-host deployments -- a shared-mount ``REPRO_CACHE_DIR``
#: stays listable when many worker hosts store into it, and per-host
#: shard subsets rsync cleanly -- and is read-compatible both ways:
#: a sharded cache still *reads* flat entries, so turning sharding on
#: over an existing directory loses nothing.  Every host sharing a
#: directory must agree on the depth for *writes* to dedupe.
CACHE_SHARDS_ENV = "REPRO_CACHE_SHARDS"

#: Cache keys are 64 hex chars; shard prefixes must leave some key.
_MAX_SHARD_DEPTH = 8

#: Default capacity of the in-process LRU front (entries, not bytes).
DEFAULT_MAX_MEMORY_ENTRIES = 256


def code_version():
    """The library version stamped into every fingerprint.

    A cache entry written by one version of the kernels must not be
    served to another -- a bugfix in an integrator legitimately changes
    results -- so the version participates in the content address.
    """
    from repro import __version__

    return __version__


def digest(value):
    """Short stable hash of any JSON-able description.

    Used to keep bulky workload descriptions (a CNF formula's clause
    list, an image's pixels, a long pair list) out of the fingerprint
    *document* while still letting them decide the content address.
    """
    payload = json.dumps(jsonable(value), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def array_fingerprint(array):
    """Content hash of a numpy array (dtype, shape, and bytes)."""
    array = np.ascontiguousarray(array)
    hasher = hashlib.sha256()
    hasher.update(str(array.dtype).encode("utf-8"))
    hasher.update(repr(array.shape).encode("utf-8"))
    hasher.update(array.tobytes())
    return hasher.hexdigest()


def formula_fingerprint(formula):
    """Content hash of a CNF formula (clauses are canonically ordered).

    :class:`~repro.core.cnf.Clause` already sorts its literals, so the
    digest is independent of construction order.
    """
    return digest([int(formula.num_variables),
                   [[list(clause.literals), clause.weight]
                    for clause in formula.clauses]])


def fingerprint(kind, meta):
    """The canonical workload-fingerprint document for ``(kind, meta)``.

    The same shape the :class:`~repro.core.resilience.Checkpointer`
    records (kind + JSON-able meta), extended with the library code
    version.  Hash it with :func:`cache_key` to get the content address.
    """
    return {"format": CACHE_FORMAT,
            "kind": str(kind),
            "meta": jsonable(meta if meta is not None else {}),
            "code": code_version()}


def cache_key(doc, index=None):
    """Content address of one entry: SHA-256 over the canonical document.

    ``index`` distinguishes the chunks of one workload (chunk-level
    caching); ``None`` addresses the whole-kernel result.
    """
    payload = json.dumps([doc, None if index is None else int(index)],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cacheable_seed(seed_or_rng):
    """True when kernel-level (whole-call) caching is safe for this RNG.

    Only integer seeds qualify: serving a cached whole-kernel result
    skips execution, and with a caller-supplied
    :class:`numpy.random.Generator` that skip would leave the
    generator's state un-advanced -- visibly different from the uncached
    run.  ``None`` (fresh entropy) is never reproducible.  Chunk-level
    caching is exempt from this restriction (the per-chunk spawn happens
    either way).
    """
    return isinstance(seed_or_rng, (int, np.integer)) \
        and not isinstance(seed_or_rng, bool)


class ResultCache:
    """LRU-fronted, content-addressed result store.

    Parameters
    ----------
    cache_dir : str or None
        Directory for the persistent tier (created on first store).
        ``None`` keeps the cache memory-only -- still useful for
        repeated kernels inside one process.
    max_memory_entries : int
        LRU capacity of the memory tier; the oldest entry is evicted
        (``cache.evictions``) when a store would exceed it.
    max_disk_bytes : int or None
        Byte budget for the disk tier; ``None`` (the default, also the
        CLI's) leaves it unbounded.  When a store pushes the tier past
        the budget, least-recently-used entry files (disk hits refresh
        their mtime) are deleted until it fits again
        (``cache.disk_evictions``).

    Notes
    -----
    Values are deep-copied on their way in and out of the memory tier,
    so a caller mutating a returned result cannot corrupt the cache.
    Disk entries are one file per key -- ``<key>.json`` for JSON-able
    (possibly ``encode``-d) values, ``<key>.npz`` for raw numpy arrays
    -- always written to a scratch name and renamed, so a concurrent
    reader sees either the complete entry or none.
    """

    def __init__(self, cache_dir=None, max_memory_entries=None,
                 max_disk_bytes=None, shard_depth=0):
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        if not 0 <= int(shard_depth) <= _MAX_SHARD_DEPTH:
            raise CacheError("shard_depth must be in 0..%d, got %r"
                             % (_MAX_SHARD_DEPTH, shard_depth))
        self.shard_depth = int(shard_depth)
        if max_memory_entries is None:
            max_memory_entries = DEFAULT_MAX_MEMORY_ENTRIES
        if int(max_memory_entries) < 0:
            raise CacheError("max_memory_entries must be >= 0, got %r"
                             % (max_memory_entries,))
        self.max_memory_entries = int(max_memory_entries)
        if max_disk_bytes is not None and int(max_disk_bytes) < 0:
            raise CacheError("max_disk_bytes must be >= 0 or None, got %r"
                             % (max_disk_bytes,))
        self.max_disk_bytes = None if max_disk_bytes is None \
            else int(max_disk_bytes)
        self._disk_used = None  # lazy incremental usage estimate
        self._memory = collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.disk_evictions = 0

    # -- keying helpers ---------------------------------------------------

    def spec(self, kind, meta, encode=None, decode=None):
        """A :class:`CacheSpec` binding this cache to one workload."""
        return CacheSpec(self, kind, meta, encode=encode, decode=decode)

    def _paths(self, key):
        """Primary (write-side) entry paths for ``key``.

        With sharding on, entries live under a fingerprint-prefix
        subdirectory (``<dir>/<key[:depth]>/<key>.json``); lookups
        additionally fall back to the flat pre-shard layout
        (:meth:`_find_entry`), so an existing directory survives the
        setting being turned on.
        """
        if self.cache_dir is None:
            return None, None
        directory = self.cache_dir
        if self.shard_depth:
            directory = os.path.join(directory, key[:self.shard_depth])
        return (os.path.join(directory, key + ".json"),
                os.path.join(directory, key + ".npz"))

    def _find_entry(self, key, suffix):
        """The existing on-disk entry for ``key``, or None.

        Checks the sharded location first, then the flat layout (reads
        stay compatible across the sharding setting).
        """
        if self.cache_dir is None:
            return None
        candidates = [os.path.join(self.cache_dir, key + suffix)]
        if self.shard_depth:
            candidates.insert(0, os.path.join(
                self.cache_dir, key[:self.shard_depth], key + suffix))
        for path in candidates:
            if os.path.exists(path):
                return path
        return None

    # -- lookup -----------------------------------------------------------

    def lookup(self, key, doc, decode=None):
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        ``doc`` is the expected fingerprint document for ``key``; a disk
        entry whose stored fingerprint disagrees raises
        :class:`CacheError` naming the path and both fingerprints
        instead of silently serving a wrong result.
        """
        registry = telemetry.get_registry()
        if key in self._memory:
            self._memory.move_to_end(key)
            self.hits += 1
            if registry.enabled:
                registry.counter("cache.hits").inc()
            return True, copy.deepcopy(self._memory[key])
        value, found = self._disk_lookup(key, doc, decode)
        if found:
            self._remember(key, value)
            self.hits += 1
            if registry.enabled:
                registry.counter("cache.hits").inc()
            return True, copy.deepcopy(value)
        self.misses += 1
        if registry.enabled:
            registry.counter("cache.misses").inc()
        return False, None

    def _disk_lookup(self, key, doc, decode):
        json_path = self._find_entry(key, ".json")
        npz_path = self._find_entry(key, ".npz")
        if json_path is not None and os.path.exists(json_path):
            try:
                with open(json_path) as handle:
                    document = json.load(handle)
            except (OSError, ValueError) as error:
                raise CacheError("cannot read cache entry %r: %s"
                                 % (json_path, error))
            self._check_fingerprint(json_path, document.get("fingerprint"),
                                    doc)
            self._touch(json_path)
            value = document.get("value")
            if decode is not None:
                value = decode(value)
            return value, True
        if npz_path is not None and os.path.exists(npz_path):
            try:
                with np.load(npz_path, allow_pickle=False) as data:
                    stored = json.loads(str(data["fingerprint"]))
                    value = np.array(data["value"])
            except (OSError, ValueError, KeyError) as error:
                raise CacheError("cannot read cache entry %r: %s"
                                 % (npz_path, error))
            self._check_fingerprint(npz_path, stored, doc)
            self._touch(npz_path)
            return value, True
        return None, False

    @staticmethod
    def _touch(path):
        """Refresh an entry's mtime so disk-budget eviction is an LRU."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover -- concurrently evicted
            pass

    @staticmethod
    def _check_fingerprint(path, stored, expected):
        if jsonable(stored) != jsonable(expected):
            raise CacheError(
                "cache entry %r does not match this workload; refusing "
                "reuse: entry fingerprint %r != expected fingerprint %r "
                "(delete the file or point --cache-dir elsewhere)"
                % (path, stored, expected))

    # -- store ------------------------------------------------------------

    def store(self, key, doc, value, encode=None):
        """Record ``value`` under ``key`` in both tiers.

        Raw numpy arrays (with no ``encode``) persist as ``.npz``;
        everything else is ``encode``-d (default identity) into the JSON
        entry alongside its fingerprint document.
        """
        registry = telemetry.get_registry()
        self._remember(key, copy.deepcopy(value))
        self.stores += 1
        if registry.enabled:
            registry.counter("cache.stores").inc()
        json_path, npz_path = self._paths(key)
        if json_path is None:
            return
        os.makedirs(os.path.dirname(json_path), exist_ok=True)
        # Scratch names carry the writer's pid: two processes storing
        # the same key concurrently must not share a scratch file, or
        # the slower one's rename races the faster one's commit.
        if encode is None and isinstance(value, np.ndarray):
            scratch = "%s.%d.tmp" % (npz_path, os.getpid())
            with open(scratch, "wb") as handle:
                np.savez(handle, value=value,
                         fingerprint=np.asarray(json.dumps(jsonable(doc))))
            os.replace(scratch, npz_path)
            written = os.path.getsize(npz_path)
            stored_path = npz_path
        else:
            encoded = value if encode is None else encode(value)
            document = {"format": CACHE_FORMAT, "key": key,
                        "fingerprint": jsonable(doc), "value": encoded}
            try:
                payload = json.dumps(document)
            except (TypeError, ValueError) as error:
                raise CacheError(
                    "cache value for kind %r is not JSON-able (%s); pass "
                    "an encode hook" % (doc.get("kind"), error))
            scratch = "%s.%d.tmp" % (json_path, os.getpid())
            with open(scratch, "w") as handle:
                handle.write(payload)
                handle.write("\n")
            os.replace(scratch, json_path)
            written = len(payload) + 1
            stored_path = json_path
        if registry.enabled:
            registry.counter("cache.bytes").inc(written)
        self._enforce_disk_budget(written, stored_path)

    def _disk_entries(self):
        """``(path, mtime, size)`` for every committed entry file.

        Walks the flat directory plus one level of shard
        subdirectories, so the disk budget governs the whole tier
        whatever layout (or mix of layouts) the directory holds.
        """
        entries = []
        directories = [self.cache_dir]
        try:
            for name in os.listdir(self.cache_dir):
                path = os.path.join(self.cache_dir, name)
                if os.path.isdir(path):
                    directories.append(path)
        except OSError:  # pragma: no cover -- directory vanished
            return entries
        for directory in directories:
            try:
                names = os.listdir(directory)
            except OSError:  # pragma: no cover -- concurrent eviction
                continue
            for name in names:
                if not name.endswith((".json", ".npz")):
                    continue  # scratch files commit or vanish on their own
                path = os.path.join(directory, name)
                try:
                    stat = os.stat(path)
                except OSError:  # pragma: no cover -- concurrent eviction
                    continue
                entries.append((path, stat.st_mtime, stat.st_size))
        return entries

    def _enforce_disk_budget(self, written, keep):
        """LRU-evict disk entry files once the byte budget is exceeded.

        Keeps an incremental usage estimate so the common under-budget
        store costs no directory scan; once the estimate crosses the
        budget the directory is rescanned (concurrent writers drift the
        estimate) and oldest-mtime entries are deleted until the tier
        fits.  The entry just written (``keep``) is never evicted, so a
        single entry larger than the whole budget still serves until
        the next store displaces it.
        """
        if self.max_disk_bytes is None or self.cache_dir is None:
            return
        if self._disk_used is None:
            self._disk_used = sum(size for _path, _mtime, size
                                  in self._disk_entries())
        else:
            self._disk_used += written
        if self._disk_used <= self.max_disk_bytes:
            return
        registry = telemetry.get_registry()
        entries = self._disk_entries()
        used = sum(size for _path, _mtime, size in entries)
        for path, _mtime, size in sorted(
                entries, key=lambda entry: (entry[1], entry[0])):
            if used <= self.max_disk_bytes:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:  # pragma: no cover -- concurrent eviction
                continue
            used -= size
            self.disk_evictions += 1
            if registry.enabled:
                registry.counter("cache.disk_evictions").inc()
        self._disk_used = used

    def _remember(self, key, value):
        if self.max_memory_entries == 0:
            return
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.evictions += 1
            registry = telemetry.get_registry()
            if registry.enabled:
                registry.counter("cache.evictions").inc()

    # -- maintenance ------------------------------------------------------

    def clear_memory(self):
        """Drop the LRU tier (disk entries survive)."""
        self._memory.clear()

    def __len__(self):
        return len(self._memory)

    def __repr__(self):
        return ("ResultCache(dir=%r, memory=%d/%d, hits=%d, misses=%d)"
                % (self.cache_dir, len(self._memory),
                   self.max_memory_entries, self.hits, self.misses))


class CacheSpec:
    """One workload's binding of cache + fingerprint + codec.

    The object call sites hand to
    :meth:`repro.core.parallel.ParallelMap.map` (chunk-level) or use
    directly (kernel-level).  ``encode``/``decode`` translate one value
    to/from its JSON form, mirroring the
    :class:`~repro.core.resilience.Checkpointer` codec convention.
    """

    __slots__ = ("cache", "kind", "doc", "encode", "decode")

    def __init__(self, cache, kind, meta, encode=None, decode=None):
        self.cache = cache
        self.kind = str(kind)
        self.doc = fingerprint(kind, meta)
        self.encode = encode
        self.decode = decode

    def key(self, index=None):
        """Content address of the whole kernel (or of chunk ``index``)."""
        return cache_key(self.doc, index)

    def lookup(self, index=None):
        """``(hit, value)`` for the whole kernel or one chunk."""
        return self.cache.lookup(self.key(index), self.doc,
                                 decode=self.decode)

    def store(self, value, index=None):
        """Record a freshly computed result."""
        self.cache.store(self.key(index), self.doc, value,
                         encode=self.encode)

    def __repr__(self):
        return "CacheSpec(kind=%s, cache=%r)" % (self.kind, self.cache)


# -- active cache plumbing -------------------------------------------------

_active_cache = None
_dir_caches = {}


def set_result_cache(cache):
    """Install ``cache`` process-wide (None clears); returns the previous.

    The programmatic override wins over the ``REPRO_CACHE_DIR``
    environment variable.
    """
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    return previous


def _env_disk_budget():
    """The ``REPRO_CACHE_DISK_BYTES`` budget, or None when unset."""
    raw = os.environ.get(CACHE_DISK_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise CacheError("%s must be an integer byte count, got %r"
                         % (CACHE_DISK_BYTES_ENV, raw))


def _env_shard_depth():
    """The ``REPRO_CACHE_SHARDS`` prefix depth, or 0 when unset."""
    raw = os.environ.get(CACHE_SHARDS_ENV, "").strip()
    if not raw:
        return 0
    try:
        depth = int(raw)
    except ValueError:
        raise CacheError("%s must be an integer shard depth, got %r"
                         % (CACHE_SHARDS_ENV, raw))
    if not 0 <= depth <= _MAX_SHARD_DEPTH:
        raise CacheError("%s must be in 0..%d, got %d"
                         % (CACHE_SHARDS_ENV, _MAX_SHARD_DEPTH, depth))
    return depth


def cache_for_dir(cache_dir, max_disk_bytes=None, shard_depth=None):
    """The shared :class:`ResultCache` for a directory.

    Memoized per absolute path so repeated kernels in one process share
    the memory tier instead of re-reading disk entries.  The disk byte
    budget comes from ``max_disk_bytes`` or, when that is None, the
    ``REPRO_CACHE_DISK_BYTES`` environment variable; likewise the
    shard depth from ``shard_depth`` or ``REPRO_CACHE_SHARDS``.  Both
    only apply when this call creates the cache (the first caller
    wins).
    """
    path = os.path.abspath(str(cache_dir))
    if path not in _dir_caches:
        if max_disk_bytes is None:
            max_disk_bytes = _env_disk_budget()
        if shard_depth is None:
            shard_depth = _env_shard_depth()
        _dir_caches[path] = ResultCache(cache_dir=path,
                                        max_disk_bytes=max_disk_bytes,
                                        shard_depth=shard_depth)
    return _dir_caches[path]


def active_cache():
    """The cache kernels should consult right now, or None.

    Checks the programmatic override first, then ``REPRO_CACHE_DIR``.
    """
    if _active_cache is not None:
        return _active_cache
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return cache_for_dir(env)
    return None


@contextlib.contextmanager
def use_cache(cache):
    """Scoped caching: install ``cache``, restore the previous one after.

    Accepts a :class:`ResultCache` or a directory path.
    """
    if isinstance(cache, (str, os.PathLike)):
        cache = cache_for_dir(cache)
    previous = set_result_cache(cache)
    try:
        yield cache
    finally:
        set_result_cache(previous)


def resolve_cache(cache):
    """Coerce a kernel's ``cache`` argument into a ResultCache or None.

    ``None`` consults the active cache (:func:`active_cache`) so library
    call sites stay uncached unless a caller, the CLI's ``--cache-dir``,
    or the environment opts in; ``False`` disables caching outright
    (the CLI's ``--no-cache``, which must win over the environment); a
    string or path selects the shared per-directory cache; an existing
    :class:`ResultCache` passes through.
    """
    if cache is None:
        return active_cache()
    if cache is False:
        return None
    if isinstance(cache, (str, os.PathLike)):
        return cache_for_dir(cache)
    if isinstance(cache, ResultCache):
        return cache
    raise CacheError(
        "cache must be None, False, a directory path, or a ResultCache; "
        "got %r" % (cache,))


def _meta_is_deterministic(meta):
    """False when meta carries an un-fingerprintable RNG.

    ``rng_fingerprint(None)`` is None -- fresh OS entropy.  A workload
    seeded that way can never be replayed, so it must never share a
    cache entry with anything.
    """
    return not (isinstance(meta, dict) and "rng" in meta
                and meta["rng"] is None)


def spec_for(cache, kind, meta, encode=None, decode=None):
    """A :class:`CacheSpec` for this workload, or None when caching is off.

    Resolves ``cache`` (:func:`resolve_cache`) and refuses to build a
    spec for non-deterministic workloads (an ``rng`` meta entry whose
    fingerprint is None).
    """
    cache = resolve_cache(cache)
    if cache is None or not _meta_is_deterministic(meta):
        return None
    return cache.spec(kind, meta, encode=encode, decode=decode)
