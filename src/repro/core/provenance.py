"""Host and source provenance for benchmark records.

A benchmark number without its context is not comparable: the 0.54x
"speedup" recorded by an early ``parallel_scaling`` run only makes sense
next to the fact that the host had a single CPU core.  This module
collects the small, dependency-free set of facts that decide whether two
perf records can be compared at all:

* host -- platform triple, machine, CPU count, Python version,
* source -- the library version and (best-effort) the git commit of the
  working tree.

Everything degrades gracefully: a missing git binary, a non-repository
checkout, or a sandboxed environment yields ``None`` fields, never an
exception.  The dict is JSON-serializable by construction; it is embedded
in every ``benchmarks/results/*.json`` companion (``conftest.emit_json``)
and every ``benchmarks/results/history.jsonl`` record
(``benchmarks/history.py``), which is what ``tools/check_perf.py`` reads
when deciding whether a baseline diff is meaningful.
"""

import os
import platform
import subprocess


def git_revision(cwd=None):
    """The working tree's commit SHA (short) and dirty flag, best-effort.

    Returns ``(sha, dirty)``; ``(None, None)`` when git or the repository
    is unavailable.  Never raises.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None, None
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout
        dirty = bool(status.strip())
    except (OSError, subprocess.SubprocessError):
        dirty = None
    return sha, dirty


def host_provenance(cwd=None):
    """JSON-ready dict describing this host and source tree.

    ``cwd`` anchors the git lookup (default: this file's repository).
    """
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        from repro import __version__ as version
    except Exception:  # pragma: no cover - broken install
        version = None
    sha, dirty = git_revision(cwd=cwd)
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "repro_version": version,
        "git_sha": sha,
        "git_dirty": dirty,
    }


def comparable(a, b, keys=("machine", "cpu_count", "implementation")):
    """True when two provenance dicts plausibly allow a perf comparison.

    Deliberately loose: same machine architecture, CPU count, and Python
    implementation.  Python *versions* and commits legitimately differ
    between the runs being compared (that is the point of a perf diff).
    Missing fields (``None``) on either side are treated as unknown and
    do not veto the comparison.
    """
    for key in keys:
        left, right = a.get(key), b.get(key)
        if left is not None and right is not None and left != right:
            return False
    return True
