"""Process-wide, dependency-free metrics: counters, gauges, histograms.

The paper's central comparisons are quantitative (DMM time-to-solution
scaling, oscillator power vs. CMOS, quantum chip-time per shot), so every
paradigm in this library is instrumented through one shared substrate:

* :class:`MetricsRegistry` -- a thread-safe, in-memory name -> instrument
  map with pluggable trace sinks (see :mod:`repro.core.tracing`),
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` -- the three
  instrument kinds,
* a module-level *active registry* that instrumentation sites reach
  through :func:`counter`, :func:`gauge`, :func:`histogram`,
  :func:`event`, and :func:`span`.

Telemetry is **off by default**: the active registry starts as
:data:`NULL_REGISTRY`, whose instrument accessors return a shared no-op
singleton, so a disabled instrumentation site costs two attribute lookups
and a no-op call -- no dict mutation, no locking, no allocation (the
guard is benchmarked by ``benchmarks/bench_telemetry_overhead.py``).
Enable it with :func:`use_registry` (scoped) or :func:`set_registry`
(process-wide).

Metric names follow ``paradigm.component.metric`` (for example
``dmm.solver.steps``, ``quantum.runtime.shots``,
``oscillator.distance.evals``, ``inmemory.crossbar.macs``); see
``docs/observability.md`` for the full scheme.
"""

import contextlib
import math
import threading

from .exceptions import TelemetryError


class _NullInstrument:
    """Shared no-op standing in for every instrument when disabled.

    Falsy so hot paths can guard optional work (e.g. reading the clock
    for a timing histogram) with a plain truthiness test.
    """

    __slots__ = ()

    kind = "null"

    def __bool__(self):
        return False

    def inc(self, amount=1):
        """No-op."""

    def set(self, value):
        """No-op."""

    def observe(self, value):
        """No-op."""

    @property
    def value(self):
        return 0.0

    def __repr__(self):
        return "NULL_INSTRUMENT"


#: The single no-op instrument every disabled site receives.
NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """A monotonically increasing total (int or float increments)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def __bool__(self):
        return True

    def inc(self, amount=1):
        """Add ``amount`` (must be non-negative) to the running total."""
        if amount < 0:
            raise TelemetryError(
                "counter %r cannot decrease (inc %r)" % (self.name, amount))
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self):
        """JSON-friendly state dict."""
        return {"kind": self.kind, "value": self._value}

    def __repr__(self):
        return "Counter(%s=%s)" % (self.name, self._value)


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def __bool__(self):
        return True

    def set(self, value):
        """Record the current level."""
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        """Move the level by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self):
        """JSON-friendly state dict."""
        return {"kind": self.kind, "value": self._value}

    def __repr__(self):
        return "Gauge(%s=%s)" % (self.name, self._value)


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean/std.

    Constant-memory (moment accumulation rather than sample storage), so
    it is safe on per-step and per-comparison hot paths.
    """

    __slots__ = ("name", "_count", "_total", "_sum_sq", "_min", "_max",
                 "_lock")

    kind = "histogram"

    def __init__(self, name):
        self.name = name
        self._count = 0
        self._total = 0.0
        self._sum_sq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def __bool__(self):
        return True

    def observe(self, value):
        """Fold one observation into the summary."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            self._sum_sq += value * value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self):
        return self._count

    @property
    def total(self):
        return self._total

    @property
    def min(self):
        return self._min if self._count else None

    @property
    def max(self):
        return self._max if self._count else None

    @property
    def mean(self):
        return self._total / self._count if self._count else None

    @property
    def std(self):
        """Population standard deviation of the observations."""
        if not self._count:
            return None
        mean = self._total / self._count
        variance = max(0.0, self._sum_sq / self._count - mean * mean)
        return math.sqrt(variance)

    def snapshot(self):
        """JSON-friendly state dict (``sum_sq`` makes snapshots mergeable)."""
        return {
            "kind": self.kind,
            "count": self._count,
            "total": self._total,
            "sum_sq": self._sum_sq,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std,
        }

    def merge_snapshot(self, entry):
        """Fold another histogram's snapshot dict into this histogram.

        Combines the moment accumulators directly, so merging is exact,
        associative, and commutative (up to float addition) -- the
        property the parallel engine's worker-registry merge relies on.
        """
        count = int(entry.get("count", 0))
        if count == 0:
            return
        total = float(entry.get("total", 0.0))
        sum_sq = entry.get("sum_sq")
        if sum_sq is None:
            # Pre-merge-era snapshot: reconstruct from mean/std.
            mean = float(entry.get("mean") or 0.0)
            std = float(entry.get("std") or 0.0)
            sum_sq = (std * std + mean * mean) * count
        with self._lock:
            self._count += count
            self._total += total
            self._sum_sq += float(sum_sq)
            if entry.get("min") is not None:
                self._min = min(self._min, float(entry["min"]))
            if entry.get("max") is not None:
                self._max = max(self._max, float(entry["max"]))

    def __repr__(self):
        return "Histogram(%s, count=%d, mean=%s)" % (
            self.name, self._count, self.mean)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe name -> instrument map plus the trace-sink fan-out.

    Parameters
    ----------
    sinks : iterable, optional
        Initial trace sinks (objects with an ``emit(event_dict)``
        method); see :mod:`repro.core.tracing`.
    """

    enabled = True

    def __init__(self, sinks=None):
        self._metrics = {}
        self._lock = threading.Lock()
        self._sinks = list(sinks) if sinks else []

    # -- instruments ------------------------------------------------------

    def _get_or_create(self, name, kind):
        instrument = self._metrics.get(name)  # lock-free fast path
        if instrument is None:
            with self._lock:
                instrument = self._metrics.get(name)
                if instrument is None:
                    instrument = _KINDS[kind](name)
                    self._metrics[name] = instrument
        if instrument.kind != kind:
            raise TelemetryError(
                "metric %r already registered as %s, requested %s"
                % (name, instrument.kind, kind))
        return instrument

    def counter(self, name):
        """Get or create the counter ``name``."""
        return self._get_or_create(name, "counter")

    def gauge(self, name):
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, "gauge")

    def histogram(self, name):
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, "histogram")

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    # -- sinks ------------------------------------------------------------

    @property
    def sinks(self):
        return tuple(self._sinks)

    def add_sink(self, sink):
        """Attach a trace sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def emit(self, event):
        """Fan an event dict out to every attached sink."""
        for sink in self._sinks:
            sink.emit(event)

    # -- snapshots --------------------------------------------------------

    def snapshot(self):
        """All instruments as a plain, JSON-serializable dict."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def reset(self):
        """Drop every instrument (sinks are kept)."""
        with self._lock:
            self._metrics.clear()

    def merge(self, snapshot):
        """Fold a registry snapshot into this registry's live instruments.

        The merge rule per instrument kind (see :func:`merge_snapshots`
        for the pure-dict equivalent):

        * counters add,
        * histograms combine their moment accumulators,
        * gauges take the incoming value (a level has no meaningful
          sum; the most recently merged worker wins).

        Used by :class:`repro.core.parallel.ParallelMap` to fold each
        worker's local registry into the parent's at join.  Raises
        :class:`TelemetryError` on a kind clash.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(entry.get("value", 0))
            elif kind == "gauge":
                self.gauge(name).set(entry.get("value", 0.0))
            elif kind == "histogram":
                self.histogram(name).merge_snapshot(entry)
            else:
                raise TelemetryError(
                    "cannot merge metric %r of unknown kind %r"
                    % (name, kind))
        return self


class _NullRegistry:
    """The disabled registry: hands out :data:`NULL_INSTRUMENT` only."""

    enabled = False
    sinks = ()

    def __bool__(self):
        return False

    def counter(self, name):
        return NULL_INSTRUMENT

    def gauge(self, name):
        return NULL_INSTRUMENT

    def histogram(self, name):
        return NULL_INSTRUMENT

    def emit(self, event):
        """No-op."""

    def merge(self, snapshot):
        """No-op (merging into a disabled registry drops the data)."""
        return self

    def snapshot(self):
        return {}

    def reset(self):
        """No-op."""

    def __contains__(self, name):
        return False

    def __len__(self):
        return 0

    def __repr__(self):
        return "NULL_REGISTRY"


#: The process-wide disabled registry (telemetry's default state).
NULL_REGISTRY = _NullRegistry()

_active_registry = NULL_REGISTRY


def get_registry():
    """The registry instrumentation sites currently resolve against."""
    return _active_registry


def set_registry(registry):
    """Install ``registry`` process-wide; returns the previous one.

    Pass :data:`NULL_REGISTRY` (or call :func:`disable`) to turn
    telemetry back off.
    """
    global _active_registry
    previous = _active_registry
    _active_registry = registry if registry is not None else NULL_REGISTRY
    return previous


def disable():
    """Turn telemetry off; returns the previously active registry."""
    return set_registry(NULL_REGISTRY)


@contextlib.contextmanager
def use_registry(registry):
    """Scoped activation: install ``registry``, restore the old one after.

    >>> registry = MetricsRegistry()
    >>> with use_registry(registry):
    ...     counter("dmm.solver.steps").inc(10)
    >>> registry.counter("dmm.solver.steps").value
    10
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enabled():
    """True when a live registry is active."""
    return _active_registry.enabled


def counter(name):
    """Counter ``name`` on the active registry (no-op when disabled)."""
    return _active_registry.counter(name)


def gauge(name):
    """Gauge ``name`` on the active registry (no-op when disabled)."""
    return _active_registry.gauge(name)


def histogram(name):
    """Histogram ``name`` on the active registry (no-op when disabled)."""
    return _active_registry.histogram(name)


def event(name, **attrs):
    """Emit a point-in-time trace event to the active registry's sinks."""
    registry = _active_registry
    if registry.enabled:
        registry.emit(tracing.point_event(name, attrs))


# -- snapshot merging ------------------------------------------------------

def _merge_histogram_entries(a, b):
    """Combined snapshot dict of two histogram snapshot entries."""
    count = int(a.get("count", 0)) + int(b.get("count", 0))
    total = float(a.get("total", 0.0)) + float(b.get("total", 0.0))
    sum_sq = float(a.get("sum_sq", 0.0)) + float(b.get("sum_sq", 0.0))
    mins = [entry["min"] for entry in (a, b) if entry.get("min") is not None]
    maxs = [entry["max"] for entry in (a, b) if entry.get("max") is not None]
    mean = total / count if count else None
    if count and mean is not None:
        variance = max(0.0, sum_sq / count - mean * mean)
        std = math.sqrt(variance)
    else:
        std = None
    return {
        "kind": "histogram",
        "count": count,
        "total": total,
        "sum_sq": sum_sq,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "mean": mean,
        "std": std,
    }


def merge_snapshots(a, b):
    """Pure merge of two registry snapshots into a new snapshot dict.

    Counters add and histograms combine their moment accumulators, so
    for those kinds the merge is associative *and* commutative --
    ``merge_snapshots(a, b) == merge_snapshots(b, a)`` -- which is what
    makes the parallel engine's at-join merge independent of worker
    completion order.  Gauges are levels, not totals: the right-hand
    value wins (so gauge merging is deliberately right-biased).

    Raises :class:`TelemetryError` when the same name carries different
    instrument kinds.
    """
    merged = dict(a)
    for name, entry in b.items():
        existing = merged.get(name)
        if existing is None:
            merged[name] = dict(entry)
            continue
        if existing.get("kind") != entry.get("kind"):
            raise TelemetryError(
                "cannot merge metric %r: kind %s vs %s"
                % (name, existing.get("kind"), entry.get("kind")))
        kind = entry.get("kind")
        if kind == "counter":
            merged[name] = {"kind": "counter",
                            "value": existing.get("value", 0)
                            + entry.get("value", 0)}
        elif kind == "gauge":
            merged[name] = {"kind": "gauge",
                            "value": entry.get("value", 0.0)}
        elif kind == "histogram":
            merged[name] = _merge_histogram_entries(existing, entry)
        else:
            raise TelemetryError(
                "cannot merge metric %r of unknown kind %r" % (name, kind))
    return merged


# -- formatting helpers ----------------------------------------------------

def fmt_seconds(seconds):
    """Human-scale duration: ``'1.53s'``, ``'12.4ms'``, ``'850us'``."""
    seconds = float(seconds)
    if seconds != seconds:  # NaN
        return "nan"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return "%.3gs" % seconds
    if magnitude >= 1e-3:
        return "%.3gms" % (seconds * 1e3)
    if magnitude >= 1e-6:
        return "%.3gus" % (seconds * 1e6)
    if magnitude == 0.0:
        return "0s"
    return "%.3gns" % (seconds * 1e9)


def fmt_quantity(value):
    """Compact numeric rendering shared by the result reprs and tables."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return "{:,}".format(value)
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return "%.3e" % value
        return "%.4g" % value
    return str(value)


def render_summary(snapshot, title="telemetry summary"):
    """Render a registry snapshot as an aligned text table.

    Counters and gauges show their value; histograms show
    ``count / mean / min / max / total``.  Returns the table string
    (callers decide where it goes -- the library never prints).
    """
    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("kind", "?")
        if kind == "histogram":
            if entry.get("count"):
                detail = "count=%s mean=%s min=%s max=%s total=%s" % (
                    fmt_quantity(entry["count"]),
                    fmt_quantity(entry["mean"]),
                    fmt_quantity(entry["min"]),
                    fmt_quantity(entry["max"]),
                    fmt_quantity(entry["total"]),
                )
            else:
                detail = "count=0"
        else:
            detail = fmt_quantity(entry.get("value", 0))
        rows.append((name, kind, detail))
    headers = ("metric", "kind", "value")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(3)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if not rows:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


# Import at the bottom so tracing can reference this module at call time
# without a circular-import failure; span and the sink classes are
# re-exported here to give instrumentation sites a single import.
from . import tracing  # noqa: E402
from .tracing import (  # noqa: E402,F401
    ConsoleSink,
    JsonlSink,
    ListSink,
    NullSink,
    Span,
    span,
)
