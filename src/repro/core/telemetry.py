"""Process-wide, dependency-free metrics: counters, gauges, histograms.

The paper's central comparisons are quantitative (DMM time-to-solution
scaling, oscillator power vs. CMOS, quantum chip-time per shot), so every
paradigm in this library is instrumented through one shared substrate:

* :class:`MetricsRegistry` -- a thread-safe, in-memory name -> instrument
  map with pluggable trace sinks (see :mod:`repro.core.tracing`),
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` -- the three
  instrument kinds,
* a module-level *active registry* that instrumentation sites reach
  through :func:`counter`, :func:`gauge`, :func:`histogram`,
  :func:`event`, and :func:`span`.

Telemetry is **off by default**: the active registry starts as
:data:`NULL_REGISTRY`, whose instrument accessors return a shared no-op
singleton, so a disabled instrumentation site costs two attribute lookups
and a no-op call -- no dict mutation, no locking, no allocation (the
guard is benchmarked by ``benchmarks/bench_telemetry_overhead.py``).
Enable it with :func:`use_registry` (scoped) or :func:`set_registry`
(process-wide).

Metric names follow ``paradigm.component.metric`` (for example
``dmm.solver.steps``, ``quantum.runtime.shots``,
``oscillator.distance.evals``, ``inmemory.crossbar.macs``); see
``docs/observability.md`` for the full scheme.

Instruments optionally carry **labels** drawn from the bounded key set
:data:`LABEL_KEYS`.  A labeled series materializes as a distinct metric
named ``base{key=value,...}`` (keys sorted, values sanitized), so the
snapshot/merge algebra below needs no label awareness at all -- labeled
series merge exactly like any other metric.  Distinct label sets per
base name are capped at :data:`MAX_LABEL_SETS` per registry; once the
cap is hit, new combinations fold deterministically into the
all-``other`` overflow series (see ``docs/observability.md``).
"""

import contextlib
import math
import threading

from .exceptions import TelemetryError


# -- labels ----------------------------------------------------------------

#: The only label keys instruments accept; anything else raises
#: :class:`TelemetryError`.  Keeping the key space closed is what keeps
#: exposition cardinality analyzable.
LABEL_KEYS = ("backend", "host", "kind", "outcome", "paradigm", "tenant")

#: Distinct label-value combinations allowed per base metric name per
#: registry before new combinations collapse into the overflow series.
MAX_LABEL_SETS = 64

#: Label value every overflowed (or empty/sanitized-away) combination
#: maps to.
OVERFLOW_VALUE = "other"

_LABEL_VALUE_MAX = 48
_LABEL_CACHE_MAX = 4096


def _sanitize_label_value(value):
    """Canonical, exposition-safe form of one label value."""
    text = str(value)[:_LABEL_VALUE_MAX]
    text = "".join(ch if (ch.isalnum() or ch in "._-:") else "_"
                   for ch in text)
    return text or OVERFLOW_VALUE


def format_metric(base, labels):
    """Encode ``base`` plus a label dict as a canonical metric name.

    Keys are sorted and values sanitized, so equal label dicts always
    produce the same name.  Unknown keys raise
    :class:`TelemetryError`.
    """
    if not labels:
        return base
    if "{" in base or "}" in base:
        raise TelemetryError("metric base name %r may not contain braces"
                             % (base,))
    for key in labels:
        if key not in LABEL_KEYS:
            raise TelemetryError(
                "unknown label key %r for metric %r (allowed: %s)"
                % (key, base, ", ".join(LABEL_KEYS)))
    body = ",".join("%s=%s" % (key, _sanitize_label_value(labels[key]))
                    for key in sorted(labels))
    return "%s{%s}" % (base, body)


def parse_metric(name):
    """Split an encoded metric name into ``(base, labels)``.

    The inverse of :func:`format_metric`; unlabeled names return an
    empty label dict.
    """
    if "{" not in name or not name.endswith("}"):
        return name, {}
    base, _, body = name.partition("{")
    labels = {}
    for pair in body[:-1].split(","):
        if pair:
            key, _, value = pair.partition("=")
            labels[key] = value
    return base, labels


class _NullInstrument:
    """Shared no-op standing in for every instrument when disabled.

    Falsy so hot paths can guard optional work (e.g. reading the clock
    for a timing histogram) with a plain truthiness test.
    """

    __slots__ = ()

    kind = "null"

    def __bool__(self):
        return False

    def inc(self, amount=1):
        """No-op."""

    def set(self, value):
        """No-op."""

    def observe(self, value):
        """No-op."""

    @property
    def value(self):
        return 0.0

    def __repr__(self):
        return "NULL_INSTRUMENT"


#: The single no-op instrument every disabled site receives.
NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """A monotonically increasing total (int or float increments)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def __bool__(self):
        return True

    def inc(self, amount=1):
        """Add ``amount`` (must be non-negative) to the running total."""
        if amount < 0:
            raise TelemetryError(
                "counter %r cannot decrease (inc %r)" % (self.name, amount))
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self):
        """JSON-friendly state dict."""
        return {"kind": self.kind, "value": self._value}

    def __repr__(self):
        return "Counter(%s=%s)" % (self.name, self._value)


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def __bool__(self):
        return True

    def set(self, value):
        """Record the current level."""
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        """Move the level by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self):
        """JSON-friendly state dict."""
        return {"kind": self.kind, "value": self._value}

    def __repr__(self):
        return "Gauge(%s=%s)" % (self.name, self._value)


#: Relative-accuracy parameter of the histogram's log-spaced quantile
#: buckets (DDSketch-style): streaming quantiles are exact in rank and
#: within ~1% in value.
QUANTILE_ALPHA = 0.01

_GAMMA = (1.0 + QUANTILE_ALPHA) / (1.0 - QUANTILE_ALPHA)
_LOG_GAMMA = math.log(_GAMMA)


def _bucket_midpoint(index):
    """Representative value of log bucket ``index`` (relative midpoint)."""
    return 2.0 * _GAMMA ** index / (_GAMMA + 1.0)


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean/std,
    plus log-spaced bucket counts for mergeable p50/p95/p99 quantiles.

    Moment accumulators are constant-memory; the quantile buckets grow
    with the *dynamic range* of the observations (one int per occupied
    log bucket), not with their count, so the instrument stays safe on
    per-step and per-comparison hot paths.  Bucket counts add exactly
    under merging, so quantiles computed from a merged snapshot are
    identical to quantiles computed serially.
    """

    __slots__ = ("name", "_count", "_total", "_sum_sq", "_min", "_max",
                 "_zeros", "_buckets", "_neg_buckets", "_lock")

    kind = "histogram"

    def __init__(self, name):
        self.name = name
        self._count = 0
        self._total = 0.0
        self._sum_sq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._zeros = 0
        self._buckets = {}
        self._neg_buckets = {}
        self._lock = threading.Lock()

    def __bool__(self):
        return True

    def observe(self, value):
        """Fold one observation into the summary."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            self._sum_sq += value * value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value > 0.0:
                if value < math.inf:
                    index = math.ceil(math.log(value) / _LOG_GAMMA)
                    self._buckets[index] = self._buckets.get(index, 0) + 1
            elif value < 0.0:
                if value > -math.inf:
                    index = math.ceil(math.log(-value) / _LOG_GAMMA)
                    self._neg_buckets[index] = (
                        self._neg_buckets.get(index, 0) + 1)
            elif value == 0.0:
                self._zeros += 1

    @property
    def count(self):
        return self._count

    @property
    def total(self):
        return self._total

    @property
    def min(self):
        return self._min if self._count else None

    @property
    def max(self):
        return self._max if self._count else None

    @property
    def mean(self):
        return self._total / self._count if self._count else None

    @property
    def std(self):
        """Population standard deviation of the observations."""
        if not self._count:
            return None
        mean = self._total / self._count
        variance = max(0.0, self._sum_sq / self._count - mean * mean)
        return math.sqrt(variance)

    def quantile(self, q):
        """Streaming quantile estimate (``None`` before any observation)."""
        return histogram_quantile(self.snapshot(), q)

    def snapshot(self):
        """JSON-friendly state dict (``sum_sq`` makes snapshots mergeable).

        Bucket keys are strings so a snapshot is identical before and
        after a JSON round-trip; ``p50``/``p95``/``p99`` are the
        streaming quantiles of :func:`histogram_quantile`.
        """
        with self._lock:
            data = {
                "kind": self.kind,
                "count": self._count,
                "total": self._total,
                "sum_sq": self._sum_sq,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "mean": self._total / self._count if self._count else None,
                "std": None,
                "zeros": self._zeros,
                "buckets": {str(index): count for index, count
                            in sorted(self._buckets.items())},
                "neg_buckets": {str(index): count for index, count
                                in sorted(self._neg_buckets.items())},
            }
            if self._count:
                variance = max(0.0, self._sum_sq / self._count
                               - data["mean"] * data["mean"])
                data["std"] = math.sqrt(variance)
        for key, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            data[key] = histogram_quantile(data, q)
        return data

    def merge_snapshot(self, entry):
        """Fold another histogram's snapshot dict into this histogram.

        Combines the moment accumulators directly, so merging is exact,
        associative, and commutative (up to float addition) -- the
        property the parallel engine's worker-registry merge relies on.
        """
        count = int(entry.get("count", 0))
        if count == 0:
            return
        total = float(entry.get("total", 0.0))
        sum_sq = entry.get("sum_sq")
        if sum_sq is None:
            # Pre-merge-era snapshot: reconstruct from mean/std.
            mean = float(entry.get("mean") or 0.0)
            std = float(entry.get("std") or 0.0)
            sum_sq = (std * std + mean * mean) * count
        with self._lock:
            self._count += count
            self._total += total
            self._sum_sq += float(sum_sq)
            if entry.get("min") is not None:
                self._min = min(self._min, float(entry["min"]))
            if entry.get("max") is not None:
                self._max = max(self._max, float(entry["max"]))
            self._zeros += int(entry.get("zeros") or 0)
            for raw, n in (entry.get("buckets") or {}).items():
                index = int(raw)
                self._buckets[index] = self._buckets.get(index, 0) + int(n)
            for raw, n in (entry.get("neg_buckets") or {}).items():
                index = int(raw)
                self._neg_buckets[index] = (
                    self._neg_buckets.get(index, 0) + int(n))

    def __repr__(self):
        return "Histogram(%s, count=%d, mean=%s)" % (
            self.name, self._count, self.mean)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe name -> instrument map plus the trace-sink fan-out.

    Parameters
    ----------
    sinks : iterable, optional
        Initial trace sinks (objects with an ``emit(event_dict)``
        method); see :mod:`repro.core.tracing`.
    """

    enabled = True

    def __init__(self, sinks=None, max_label_sets=MAX_LABEL_SETS):
        self._metrics = {}
        self._lock = threading.Lock()
        self._sinks = list(sinks) if sinks else []
        self.max_label_sets = max_label_sets
        self._label_sets = {}   # base name -> set of canonical combos
        self._label_cache = {}  # (base, raw combo) -> encoded name

    # -- instruments ------------------------------------------------------

    def _get_or_create(self, name, kind):
        instrument = self._metrics.get(name)  # lock-free fast path
        if instrument is None:
            with self._lock:
                instrument = self._metrics.get(name)
                if instrument is None:
                    instrument = _KINDS[kind](name)
                    self._metrics[name] = instrument
        if instrument.kind != kind:
            raise TelemetryError(
                "metric %r already registered as %s, requested %s"
                % (name, instrument.kind, kind))
        return instrument

    def _labeled_name(self, base, labels):
        """Encoded series name for ``base`` + ``labels``, cap applied.

        The cap counts *distinct sanitized combinations* per base name
        in arrival order; a combination past the cap maps every value
        to :data:`OVERFLOW_VALUE`, so a given stream of label sets
        always lands in the same series regardless of how it is split
        across registries or workers (as long as distinct combinations
        stay within the cap, the mapping is the identity).
        """
        cache_key = (base, tuple(sorted(labels.items())))
        encoded = self._label_cache.get(cache_key)  # lock-free fast path
        if encoded is not None:
            return encoded
        if "{" in base or "}" in base:
            raise TelemetryError(
                "metric base name %r may not contain braces" % (base,))
        canonical = []
        for key in sorted(labels):
            if key not in LABEL_KEYS:
                raise TelemetryError(
                    "unknown label key %r for metric %r (allowed: %s)"
                    % (key, base, ", ".join(LABEL_KEYS)))
            canonical.append((key, _sanitize_label_value(labels[key])))
        combo = tuple(canonical)
        with self._lock:
            seen = self._label_sets.setdefault(base, set())
            if combo not in seen:
                if len(seen) >= self.max_label_sets:
                    combo = tuple((key, OVERFLOW_VALUE)
                                  for key, _value in canonical)
                seen.add(combo)
        encoded = "%s{%s}" % (base, ",".join("%s=%s" % pair
                                             for pair in combo))
        if len(self._label_cache) < _LABEL_CACHE_MAX:
            self._label_cache[cache_key] = encoded
        return encoded

    def counter(self, name, labels=None):
        """Get or create the counter ``name`` (optionally labeled)."""
        if labels:
            name = self._labeled_name(name, labels)
        return self._get_or_create(name, "counter")

    def gauge(self, name, labels=None):
        """Get or create the gauge ``name`` (optionally labeled)."""
        if labels:
            name = self._labeled_name(name, labels)
        return self._get_or_create(name, "gauge")

    def histogram(self, name, labels=None):
        """Get or create the histogram ``name`` (optionally labeled)."""
        if labels:
            name = self._labeled_name(name, labels)
        return self._get_or_create(name, "histogram")

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    # -- sinks ------------------------------------------------------------

    @property
    def sinks(self):
        return tuple(self._sinks)

    def add_sink(self, sink):
        """Attach a trace sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        """Detach a previously attached trace sink (no-op when absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(self, event):
        """Fan an event dict out to every attached sink."""
        for sink in self._sinks:
            sink.emit(event)

    # -- snapshots --------------------------------------------------------

    def snapshot(self):
        """All instruments as a plain, JSON-serializable dict."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def reset(self):
        """Drop every instrument and label bookkeeping (sinks are kept)."""
        with self._lock:
            self._metrics.clear()
            self._label_sets.clear()
            self._label_cache.clear()

    def merge(self, snapshot):
        """Fold a registry snapshot into this registry's live instruments.

        The merge rule per instrument kind (see :func:`merge_snapshots`
        for the pure-dict equivalent):

        * counters add,
        * histograms combine their moment accumulators,
        * gauges take the incoming value (a level has no meaningful
          sum; the most recently merged worker wins).

        Used by :class:`repro.core.parallel.ParallelMap` to fold each
        worker's local registry into the parent's at join.  Raises
        :class:`TelemetryError` on a kind clash.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(entry.get("value", 0))
            elif kind == "gauge":
                self.gauge(name).set(entry.get("value", 0.0))
            elif kind == "histogram":
                self.histogram(name).merge_snapshot(entry)
            else:
                raise TelemetryError(
                    "cannot merge metric %r of unknown kind %r"
                    % (name, kind))
        return self


class _NullRegistry:
    """The disabled registry: hands out :data:`NULL_INSTRUMENT` only."""

    enabled = False
    sinks = ()

    def __bool__(self):
        return False

    def counter(self, name, labels=None):
        return NULL_INSTRUMENT

    def gauge(self, name, labels=None):
        return NULL_INSTRUMENT

    def histogram(self, name, labels=None):
        return NULL_INSTRUMENT

    def emit(self, event):
        """No-op."""

    def merge(self, snapshot):
        """No-op (merging into a disabled registry drops the data)."""
        return self

    def snapshot(self):
        return {}

    def reset(self):
        """No-op."""

    def __contains__(self, name):
        return False

    def __len__(self):
        return 0

    def __repr__(self):
        return "NULL_REGISTRY"


#: The process-wide disabled registry (telemetry's default state).
NULL_REGISTRY = _NullRegistry()

_active_registry = NULL_REGISTRY


def get_registry():
    """The registry instrumentation sites currently resolve against."""
    return _active_registry


def set_registry(registry):
    """Install ``registry`` process-wide; returns the previous one.

    Pass :data:`NULL_REGISTRY` (or call :func:`disable`) to turn
    telemetry back off.
    """
    global _active_registry
    previous = _active_registry
    _active_registry = registry if registry is not None else NULL_REGISTRY
    return previous


def disable():
    """Turn telemetry off; returns the previously active registry."""
    return set_registry(NULL_REGISTRY)


@contextlib.contextmanager
def use_registry(registry):
    """Scoped activation: install ``registry``, restore the old one after.

    >>> registry = MetricsRegistry()
    >>> with use_registry(registry):
    ...     counter("dmm.solver.steps").inc(10)
    >>> registry.counter("dmm.solver.steps").value
    10
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enabled():
    """True when a live registry is active."""
    return _active_registry.enabled


def counter(name, labels=None):
    """Counter ``name`` on the active registry (no-op when disabled)."""
    return _active_registry.counter(name, labels)


def gauge(name, labels=None):
    """Gauge ``name`` on the active registry (no-op when disabled)."""
    return _active_registry.gauge(name, labels)


def histogram(name, labels=None):
    """Histogram ``name`` on the active registry (no-op when disabled)."""
    return _active_registry.histogram(name, labels)


def event(name, **attrs):
    """Emit a point-in-time trace event to the active registry's sinks."""
    registry = _active_registry
    if registry.enabled:
        registry.emit(tracing.point_event(name, attrs))


# -- quantiles -------------------------------------------------------------

def histogram_quantile(entry, q):
    """Quantile estimate from a histogram snapshot entry.

    Nearest-rank walk over the log-spaced bucket counts recorded by
    :class:`Histogram`: exact in rank, within :data:`QUANTILE_ALPHA`
    relative error in value (clamped to the observed min/max), and --
    because bucket counts add exactly under merging -- identical
    whether computed on a serial snapshot or on the merge of per-worker
    snapshots.  Returns ``None`` for empty or pre-quantile entries.
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError("quantile must be in [0, 1], got %r" % (q,))
    zeros = int(entry.get("zeros") or 0)
    pos = sorted((int(index), int(n))
                 for index, n in (entry.get("buckets") or {}).items())
    neg = sorted(((int(index), int(n))
                  for index, n in (entry.get("neg_buckets") or {}).items()),
                 reverse=True)
    total = zeros + sum(n for _i, n in pos) + sum(n for _i, n in neg)
    if total == 0:
        return None

    def clamp(value):
        low, high = entry.get("min"), entry.get("max")
        if low is not None and value < low:
            return float(low)
        if high is not None and value > high:
            return float(high)
        return float(value)

    rank = max(1, math.ceil(q * total))
    seen = 0
    for index, n in neg:  # descending index == ascending value
        seen += n
        if seen >= rank:
            return clamp(-_bucket_midpoint(index))
    seen += zeros
    if zeros and seen >= rank:
        return clamp(0.0)
    for index, n in pos:
        seen += n
        if seen >= rank:
            return clamp(_bucket_midpoint(index))
    return clamp(_bucket_midpoint(pos[-1][0])) if pos else clamp(0.0)


# -- snapshot merging ------------------------------------------------------

def _merge_histogram_entries(a, b):
    """Combined snapshot dict of two histogram snapshot entries."""
    count = int(a.get("count", 0)) + int(b.get("count", 0))
    total = float(a.get("total", 0.0)) + float(b.get("total", 0.0))
    sum_sq = float(a.get("sum_sq", 0.0)) + float(b.get("sum_sq", 0.0))
    mins = [entry["min"] for entry in (a, b) if entry.get("min") is not None]
    maxs = [entry["max"] for entry in (a, b) if entry.get("max") is not None]
    mean = total / count if count else None
    if count and mean is not None:
        variance = max(0.0, sum_sq / count - mean * mean)
        std = math.sqrt(variance)
    else:
        std = None
    buckets = {}
    neg_buckets = {}
    for entry, target in ((a, buckets), (b, buckets),
                          (a, neg_buckets), (b, neg_buckets)):
        key = "buckets" if target is buckets else "neg_buckets"
        for raw, n in (entry.get(key) or {}).items():
            index = int(raw)
            target[index] = target.get(index, 0) + int(n)
    merged = {
        "kind": "histogram",
        "count": count,
        "total": total,
        "sum_sq": sum_sq,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "mean": mean,
        "std": std,
        "zeros": int(a.get("zeros") or 0) + int(b.get("zeros") or 0),
        "buckets": {str(index): n for index, n in sorted(buckets.items())},
        "neg_buckets": {str(index): n for index, n
                        in sorted(neg_buckets.items())},
    }
    for key, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        merged[key] = histogram_quantile(merged, q)
    return merged


def merge_histogram_entries(a, b):
    """Public histogram-entry merge (used by the SLO evaluator)."""
    return _merge_histogram_entries(a, b)


def merge_snapshots(a, b):
    """Pure merge of two registry snapshots into a new snapshot dict.

    Counters add and histograms combine their moment accumulators, so
    for those kinds the merge is associative *and* commutative --
    ``merge_snapshots(a, b) == merge_snapshots(b, a)`` -- which is what
    makes the parallel engine's at-join merge independent of worker
    completion order.  Gauges are levels, not totals: the right-hand
    value wins (so gauge merging is deliberately right-biased).

    Raises :class:`TelemetryError` when the same name carries different
    instrument kinds.
    """
    merged = dict(a)
    for name, entry in b.items():
        existing = merged.get(name)
        if existing is None:
            merged[name] = dict(entry)
            continue
        if existing.get("kind") != entry.get("kind"):
            raise TelemetryError(
                "cannot merge metric %r: kind %s vs %s"
                % (name, existing.get("kind"), entry.get("kind")))
        kind = entry.get("kind")
        if kind == "counter":
            merged[name] = {"kind": "counter",
                            "value": existing.get("value", 0)
                            + entry.get("value", 0)}
        elif kind == "gauge":
            merged[name] = {"kind": "gauge",
                            "value": entry.get("value", 0.0)}
        elif kind == "histogram":
            merged[name] = _merge_histogram_entries(existing, entry)
        else:
            raise TelemetryError(
                "cannot merge metric %r of unknown kind %r" % (name, kind))
    return merged


# -- formatting helpers ----------------------------------------------------

def fmt_seconds(seconds):
    """Human-scale duration: ``'1.53s'``, ``'12.4ms'``, ``'850us'``."""
    seconds = float(seconds)
    if seconds != seconds:  # NaN
        return "nan"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return "%.3gs" % seconds
    if magnitude >= 1e-3:
        return "%.3gms" % (seconds * 1e3)
    if magnitude >= 1e-6:
        return "%.3gus" % (seconds * 1e6)
    if magnitude == 0.0:
        return "0s"
    return "%.3gns" % (seconds * 1e9)


def fmt_quantity(value):
    """Compact numeric rendering shared by the result reprs and tables."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return "{:,}".format(value)
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return "%.3e" % value
        return "%.4g" % value
    return str(value)


def render_summary(snapshot, title="telemetry summary"):
    """Render a registry snapshot as an aligned text table.

    Counters and gauges show their value; histograms show
    ``count / mean / min / max / total``.  Returns the table string
    (callers decide where it goes -- the library never prints).
    """
    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("kind", "?")
        if kind == "histogram":
            if entry.get("count"):
                detail = "count=%s mean=%s min=%s max=%s total=%s" % (
                    fmt_quantity(entry["count"]),
                    fmt_quantity(entry["mean"]),
                    fmt_quantity(entry["min"]),
                    fmt_quantity(entry["max"]),
                    fmt_quantity(entry["total"]),
                )
            else:
                detail = "count=0"
        else:
            detail = fmt_quantity(entry.get("value", 0))
        rows.append((name, kind, detail))
    headers = ("metric", "kind", "value")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(3)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if not rows:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


# Import at the bottom so tracing can reference this module at call time
# without a circular-import failure; span and the sink classes are
# re-exported here to give instrumentation sites a single import.
from . import tracing  # noqa: E402
from .tracing import (  # noqa: E402,F401
    ConsoleSink,
    JsonlSink,
    ListSink,
    NullSink,
    Span,
    span,
)
