"""Seeded random-number plumbing.

Every stochastic component in the library (WalkSAT restarts, DMM initial
conditions, synthetic image noise, RBM sampling) accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``.  This module
centralizes the coercion so behaviour is reproducible end to end: the same
seed yields the same benchmark rows.
"""

import numpy as np


def make_rng(seed_or_rng=None):
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh nondeterministic generator), an ``int`` seed,
    or an existing generator (returned unchanged so state is shared).
    """
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(
        "expected None, int seed, or numpy Generator; got %r" % (seed_or_rng,)
    )


def spawn_rngs(seed_or_rng, count):
    """Derive ``count`` independent child generators from one source.

    Children are statistically independent streams; use one per parallel
    component (e.g. one per oscillator in an array) so adding components
    does not perturb the streams of existing ones.
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %r" % count)
    parent = make_rng(seed_or_rng)
    seed_seq = getattr(parent.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        children = seed_seq.spawn(count)
        return [np.random.default_rng(child) for child in children]
    seeds = parent.integers(0, 2**63, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
