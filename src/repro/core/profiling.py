"""Performance attribution: self vs. cumulative time and throughput.

The telemetry spans (:mod:`repro.core.tracing`) answer "how long did
this region take"; this module answers the question a perf hunt actually
asks: **where does the time go?**  It builds an *attribution tree* from a
stream of span events:

* every distinct call path (the stack of span names) becomes one node,
* a node's **cumulative time** is the wall time spent inside any span on
  that path,
* its **self time** is the cumulative time minus the time attributed to
  its direct children -- the part this region spent doing its *own*
  work.

Self time is the attribution invariant: summed over the whole tree it
equals the total traced time, so a region cannot hide behind its callees
and a sort by self time ranks the real hot spots.

Spans merged back from parallel workers (tagged ``"worker": <chunk>`` by
:class:`repro.core.parallel.ParallelMap`) form their own stacks: each
worker's events are reconstructed as an independent stream and the
resulting paths aggregate with the parent's by name, so eight chunks of
``dmm.solver.solve`` land in one node with ``count=8``.

Three entry points:

* :class:`ProfileSink` -- a trace sink that buffers events and builds
  the :class:`Profile` on demand (what ``repro profile`` attaches),
* :func:`Profile.from_events` -- build from any event list (e.g. a
  JSONL trace read back with :func:`repro.core.tracing.read_jsonl`),
* :func:`record_throughput` -- the per-kernel throughput instruments
  (gates/s, trajectory-steps/s, pairs/s, VMM ops/s) the paradigm
  packages feed; a histogram of units/second plus a units counter, so
  ROADMAP perf work is pinned by rates, not anecdotes.

Everything here follows the telemetry overhead contract: with the NULL
registry active, :func:`record_throughput` is a truthiness test and an
early return (``benchmarks/bench_profiling_overhead.py`` holds it below
the same 5% budget as the rest of the instrumentation).
"""

from . import telemetry
from .tracing import TraceSink


def record_throughput(name, units, seconds):
    """Observe one kernel execution's rate on the active registry.

    Records ``units / seconds`` into the histogram ``<name>_per_s`` and
    adds ``units`` to the counter ``<name>_units``.  Returns the rate,
    or ``None`` when telemetry is disabled or the measurement is
    degenerate (non-positive units or duration) -- so call sites can
    fire unconditionally without guarding.
    """
    registry = telemetry.get_registry()
    if not registry.enabled:
        return None
    units = float(units)
    seconds = float(seconds)
    if units <= 0.0 or seconds <= 0.0:
        return None
    rate = units / seconds
    registry.histogram(name + "_per_s").observe(rate)
    registry.counter(name + "_units").inc(units)
    return rate


class ProfileNode:
    """Aggregated statistics for one call path in the attribution tree.

    Attributes
    ----------
    path : tuple of str
        Span names from root to this node.
    count : int
        Completed span instances on this path.
    cum_s : float
        Total wall time inside spans on this path (cumulative).
    self_s : float
        Cumulative time minus direct children's cumulative time.
    min_s, max_s : float
        Fastest / slowest single instance.
    errors : int
        Instances that closed with ``status="error"``.
    """

    __slots__ = ("path", "count", "cum_s", "self_s", "min_s", "max_s",
                 "errors")

    def __init__(self, path):
        self.path = tuple(path)
        self.count = 0
        self.cum_s = 0.0
        self.self_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.errors = 0

    @property
    def name(self):
        return self.path[-1]

    @property
    def depth(self):
        return len(self.path) - 1

    @property
    def mean_s(self):
        return self.cum_s / self.count if self.count else 0.0

    def snapshot(self):
        """JSON-friendly dict (used by the machine-readable exports)."""
        return {
            "path": list(self.path),
            "count": self.count,
            "cum_s": self.cum_s,
            "self_s": self.self_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s if self.count else None,
            "errors": self.errors,
        }

    def __repr__(self):
        return "ProfileNode(%s, count=%d, self=%s, cum=%s)" % (
            "/".join(self.path), self.count,
            telemetry.fmt_seconds(self.self_s),
            telemetry.fmt_seconds(self.cum_s))


def _instance_forest(events):
    """Rebuild one stream's span instances from its close-ordered events.

    Span events are emitted at *close* time carrying their stack depth,
    and a child always closes before its parent, so the stream can be
    folded bottom-up: completed subtrees accumulate per depth until the
    span one level up closes and adopts them.  Returns the list of root
    instances ``(name, duration_s, status, children)``; spans whose
    parent never closed (a crashed run's truncated trace) are promoted
    to roots rather than dropped.
    """
    pending = {}
    for event in events:
        if event.get("type") != "span":
            continue
        depth = max(0, int(event.get("depth") or 0))
        children = pending.pop(depth + 1, [])
        node = (str(event.get("name", "?")),
                max(0.0, float(event.get("duration_s") or 0.0)),
                event.get("status", "ok"), children)
        pending.setdefault(depth, []).append(node)
    roots = []
    for depth in sorted(pending):
        roots.extend(pending[depth])
    return roots


class Profile:
    """The attribution tree: call paths aggregated over span instances."""

    def __init__(self):
        self._nodes = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_events(cls, events, trace=None):
        """Build a profile from telemetry span events.

        Events tagged with a ``"worker"`` key (spans merged back from
        parallel workers) are reconstructed as separate streams -- each
        worker has its own stack -- and aggregated into the same tree by
        path.  Pass ``trace`` to restrict the profile to one request's
        events (those carrying that ``"trace"`` id).
        """
        streams = {}
        for event in events:
            if not isinstance(event, dict):
                continue
            if trace is not None and event.get("trace") != trace:
                continue
            streams.setdefault(event.get("worker"), []).append(event)
        profile = cls()
        for key in sorted(streams, key=lambda k: (k is not None, str(k))):
            profile._fold(_instance_forest(streams[key]), ())
        return profile

    def _fold(self, instances, prefix):
        for name, duration, status, children in instances:
            path = prefix + (name,)
            node = self._nodes.get(path)
            if node is None:
                node = self._nodes[path] = ProfileNode(path)
            node.count += 1
            node.cum_s += duration
            child_time = sum(child[1] for child in children)
            node.self_s += max(0.0, duration - child_time)
            node.min_s = min(node.min_s, duration)
            node.max_s = max(node.max_s, duration)
            if status == "error":
                node.errors += 1
            self._fold(children, path)

    # -- queries ----------------------------------------------------------

    def __len__(self):
        return len(self._nodes)

    def __contains__(self, path):
        return tuple(path) in self._nodes

    def node(self, path):
        """The node at ``path`` (a tuple/list of span names), or None."""
        return self._nodes.get(tuple(path))

    @property
    def nodes(self):
        """Every node, root-first (depth, then path)."""
        return sorted(self._nodes.values(),
                      key=lambda n: (n.depth, n.path))

    @property
    def roots(self):
        return [node for node in self.nodes if node.depth == 0]

    @property
    def total_seconds(self):
        """Total traced time (sum of root cumulative times)."""
        return sum(node.cum_s for node in self.roots)

    def hotspots(self, limit=None):
        """Nodes ranked by self time, hottest first."""
        ranked = sorted(self._nodes.values(),
                        key=lambda n: (-n.self_s, n.path))
        return ranked[:limit] if limit else ranked

    def snapshot(self):
        """JSON-friendly list of node dicts, root-first."""
        return [node.snapshot() for node in self.nodes]

    # -- rendering --------------------------------------------------------

    def render(self, sort="self", limit=None, title="performance profile"):
        """The attribution table as text (the ``repro profile`` output).

        ``sort="self"`` ranks by self time (hot-spot view, flat);
        ``sort="cum"`` keeps tree order with indentation (attribution
        view).  Returns the string; callers decide where it goes.
        """
        if sort not in ("self", "cum"):
            raise ValueError("sort must be 'self' or 'cum', got %r" % sort)
        total = self.total_seconds or 1.0
        if sort == "self":
            nodes = self.hotspots(limit)
            labels = ["/".join(node.path) for node in nodes]
        else:
            nodes = self._tree_order()
            if limit:
                nodes = nodes[:limit]
            labels = ["  " * node.depth + node.name for node in nodes]
        headers = ("span", "count", "self", "self%", "cum", "cum%",
                   "mean", "errors")
        rows = []
        for node, label in zip(nodes, labels):
            rows.append((
                label,
                telemetry.fmt_quantity(node.count),
                telemetry.fmt_seconds(node.self_s),
                "%.1f%%" % (100.0 * node.self_s / total),
                telemetry.fmt_seconds(node.cum_s),
                "%.1f%%" % (100.0 * node.cum_s / total),
                telemetry.fmt_seconds(node.mean_s),
                telemetry.fmt_quantity(node.errors),
            ))
        widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
                  if rows else len(headers[i]) for i in range(len(headers))]
        lines = [title, "=" * len(title),
                 "total traced time: %s across %d span path(s)"
                 % (telemetry.fmt_seconds(self.total_seconds),
                    len(self._nodes)),
                 ""]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if not rows:
            lines.append("(no spans recorded)")
        return "\n".join(lines)

    def _tree_order(self):
        """Nodes in depth-first order, siblings by descending cum time."""
        children = {}
        for node in self._nodes.values():
            children.setdefault(node.path[:-1], []).append(node)
        for siblings in children.values():
            siblings.sort(key=lambda n: (-n.cum_s, n.path))
        ordered = []

        def _walk(path):
            for node in children.get(path, ()):
                ordered.append(node)
                _walk(node.path)

        _walk(())
        return ordered

    def __repr__(self):
        return "Profile(paths=%d, total=%s)" % (
            len(self._nodes), telemetry.fmt_seconds(self.total_seconds))


class ProfileSink(TraceSink):
    """Trace sink buffering events for attribution and trace export.

    Attach to a registry alongside (or instead of) a
    :class:`~repro.core.tracing.JsonlSink`; call :meth:`profile` for the
    attribution tree, or hand :attr:`events` to
    :func:`repro.core.tracing.write_chrome_trace` for a Perfetto-loadable
    trace.  ``repro profile`` does both.
    """

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)

    def profile(self):
        """The attribution tree over everything buffered so far."""
        return Profile.from_events(self.events)
