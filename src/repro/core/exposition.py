"""Prometheus text exposition of a telemetry registry snapshot.

One function, :func:`render_prometheus`, turns the JSON-friendly
snapshot produced by :meth:`MetricsRegistry.snapshot` into the
Prometheus text format (version 0.0.4): counters gain the conventional
``_total`` suffix, gauges expose their level, and histograms are
rendered as *summaries* -- ``quantile="0.5|0.95|0.99"`` series from the
streaming log-bucket quantiles plus ``_sum``/``_count`` -- because the
library's histograms accumulate mergeable moments and bucket counts,
not Prometheus-style cumulative le-buckets.

Labeled series (``base{key=value}`` names, see
:mod:`repro.core.telemetry`) decode back into real Prometheus labels;
metric and label names are sanitized to the exposition grammar
(``docs/observability.md`` documents the mapping).  The output is
validated in CI against the vendored checker in ``tools/prom_lint.py``.
"""

import math

from . import telemetry


def prometheus_name(name):
    """Map a dotted metric name onto the Prometheus name grammar."""
    out = []
    for index, ch in enumerate(name):
        if ch.isalnum() and (index or not ch.isdigit()) or ch == "_":
            out.append(ch)
        elif ch == ":":
            out.append(ch)
        else:
            out.append("_")
    return "".join(out) or "_"


def escape_label_value(value):
    """Escape a label value per the text-format rules."""
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value):
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_body(labels, extra=None):
    pairs = [(key, value) for key, value in sorted(labels.items())]
    if extra:
        pairs += list(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (prometheus_name(key), escape_label_value(value))
        for key, value in pairs)


def render_prometheus(snapshot):
    """The snapshot as Prometheus text exposition (one string).

    Families are emitted in sorted base-name order, each with one
    ``# HELP``/``# TYPE`` pair followed by its samples (the unlabeled
    series first, then labeled series in sorted name order).
    """
    families = {}  # prometheus family name -> (kind, [(labels, entry)])
    for name in sorted(snapshot):
        entry = snapshot[name]
        base, labels = telemetry.parse_metric(name)
        kind = entry.get("kind")
        family = prometheus_name(base)
        if kind == "counter":
            family += "_total"
        known = families.setdefault(family, (kind, []))
        if known[0] != kind:
            # A dotted name and a labeled name collapsing onto the same
            # exposition family with different kinds: skip the clash
            # rather than emit an invalid exposition.
            continue
        known[1].append((labels, entry))
    lines = []
    for family in sorted(families):
        kind, series = families[family]
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "summary"}.get(kind)
        if prom_type is None:
            continue
        lines.append("# HELP %s repro %s" % (family, kind))
        lines.append("# TYPE %s %s" % (family, prom_type))
        for labels, entry in series:
            if kind in ("counter", "gauge"):
                lines.append("%s%s %s" % (family, _label_body(labels),
                                          _format_value(entry.get("value"))))
                continue
            for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                                  ("0.99", "p99")):
                value = entry.get(key)
                if value is None and entry.get("count"):
                    value = telemetry.histogram_quantile(entry,
                                                         float(quantile))
                if value is not None:
                    lines.append("%s%s %s" % (
                        family,
                        _label_body(labels, [("quantile", quantile)]),
                        _format_value(value)))
            lines.append("%s_sum%s %s" % (family, _label_body(labels),
                                          _format_value(entry.get("total"))))
            lines.append("%s_count%s %s" % (
                family, _label_body(labels),
                _format_value(entry.get("count", 0))))
    return "\n".join(lines) + "\n" if lines else ""
