"""Failure handling for the fan-out paths: retries, faults, checkpoints.

The paper frames all three computing models as *accelerators* beside a
classical host (Fig. 1/2); real accelerator orchestration assumes
workers fail, time out, and get retried without corrupting results.
:mod:`repro.core.parallel` detects chunk failures (error / timeout /
crash); this module turns detection into *recovery*:

* :class:`RetryPolicy` -- per-chunk retry budget with exponential
  backoff and deterministic jitter (drawn from a
  :func:`~repro.core.rngs.spawn_rngs` stream keyed on ``(root seed,
  chunk index, attempt)``, so the delay schedule -- like everything
  else in the engine -- is independent of the worker count),
* :class:`FaultPlan` -- a test harness that injects ``raise`` /
  ``hang`` / ``kill`` / ``nan`` faults at chosen chunk x attempt
  coordinates, enabled programmatically (:func:`use_faults`), through
  the ``REPRO_FAULTS`` environment variable, or through the
  ``fault_plan`` pytest fixture -- recovery semantics are *proved*
  under injected faults instead of hoped for,
* :class:`Checkpointer` -- a JSON chunk-result checkpoint that
  :meth:`repro.core.parallel.ParallelMap.map` updates as chunks
  complete and consults on the next run to skip finished chunks, so a
  killed long run resumes instead of restarting.

Determinism under retry
-----------------------
A retried chunk re-runs its *original* task payload: on the process
path the parent's payload (including its spawned child generator) is
never mutated by a worker, and on the serial path the engine
deep-copies the payload before every attempt whenever retries or fault
injection are active.  A chunk that eventually succeeds therefore
returns exactly what a fault-free run returns -- the recovery suite
(``tests/core/test_resilience.py``) holds the library to that bit for
bit.  :func:`coordinate_rng` additionally derives a fresh stream from
``(root seed, chunk index, attempt)`` for callers (and the backoff
jitter) that want per-attempt randomness without breaking the
contract.

Checkpoint file format
----------------------
One JSON document (written atomically via rename)::

    {"format": "repro-checkpoint-v1",
     "kind": "dmm-ensemble",
     "meta": {... workload fingerprint, incl. RNG bookkeeping ...},
     "chunks": {"0": <encoded chunk result>, "3": ...}}

``meta`` must match between the writing and the resuming run (same
seed, same chunking, same physics parameters); a mismatch raises
:class:`~repro.core.exceptions.ResilienceError` unless the caller
opted into ``restart_on_mismatch`` (used by rolling checkpoints such
as Shor's per-base order finding).  See ``docs/resilience.md``.
"""

import contextlib
import json
import os
import time

import numpy as np

from . import telemetry
from .exceptions import InjectedFault, ResilienceError
from .rngs import spawn_rngs

#: Environment variable carrying a fault-plan spec
#: (``"chunk:attempt:action[,chunk:attempt:action...]"``).
FAULTS_ENV = "REPRO_FAULTS"

#: The checkpoint document's format marker.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

#: Mask keeping SeedSequence entropy words non-negative 64-bit ints.
_SEED_MASK = (1 << 63) - 1


def coordinate_rng(root_seed, chunk_index, attempt):
    """Deterministic generator for one ``(root seed, chunk, attempt)``.

    The stream depends only on its coordinates -- never on the worker
    count or on how many other chunks were retried -- so per-attempt
    randomness (backoff jitter, attempt-specific reseeding) preserves
    the engine's bit-identical-across-workers contract.
    """
    seq = np.random.SeedSequence([int(root_seed) & _SEED_MASK,
                                  int(chunk_index) & _SEED_MASK,
                                  int(attempt) & _SEED_MASK])
    return spawn_rngs(np.random.default_rng(seq), 1)[0]


class RetryPolicy:
    """How (and whether) failed chunks are re-dispatched.

    Parameters
    ----------
    max_attempts : int
        Total attempts per chunk, including the first (1 == no retry).
    backoff_base : float
        Delay in seconds before the second attempt; 0 disables sleeping
        (tests use this to keep retries instantaneous).
    backoff_factor : float
        Multiplier applied per additional attempt (exponential backoff).
    backoff_max : float
        Upper clamp on any single delay.
    jitter : float
        Fractional jitter: the delay is scaled by ``1 + jitter * u``
        with ``u`` drawn from :func:`coordinate_rng` -- deterministic
        given ``(seed, chunk index, attempt)``.
    retry_on : iterable of str
        :class:`~repro.core.parallel.TaskFailure` reasons that warrant
        a retry; the default retries everything the engine classifies
        (``error`` / ``timeout`` / ``crashed`` / ``invalid``).
    seed : int
        Root seed for the jitter streams.
    """

    #: Every failure reason the engine can classify.
    RETRYABLE_REASONS = ("error", "timeout", "crashed", "invalid")

    def __init__(self, max_attempts=3, backoff_base=0.05,
                 backoff_factor=2.0, backoff_max=2.0, jitter=0.25,
                 retry_on=None, seed=0):
        if int(max_attempts) < 1:
            raise ResilienceError(
                "max_attempts must be >= 1, got %r" % (max_attempts,))
        if backoff_base < 0 or backoff_max < 0 or jitter < 0:
            raise ResilienceError(
                "backoff_base, backoff_max, and jitter must be "
                "non-negative")
        if backoff_factor < 1.0:
            raise ResilienceError(
                "backoff_factor must be >= 1, got %r" % (backoff_factor,))
        reasons = self.RETRYABLE_REASONS if retry_on is None \
            else tuple(retry_on)
        unknown = set(reasons) - set(self.RETRYABLE_REASONS)
        if unknown:
            raise ResilienceError(
                "unknown retry_on reason(s) %s; choose from %s"
                % (sorted(unknown), list(self.RETRYABLE_REASONS)))
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)
        self.jitter = float(jitter)
        self.retry_on = reasons
        self.seed = int(seed)

    def retries(self, reason):
        """True when a failure with this reason is worth re-dispatching."""
        return reason in self.retry_on

    def delay(self, chunk_index, attempt):
        """Seconds to wait before re-running ``chunk_index``.

        ``attempt`` is the (1-based) attempt that just failed; the
        jitter is a pure function of ``(seed, chunk index, attempt)``.
        """
        if self.backoff_base <= 0.0:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter > 0.0:
            u = coordinate_rng(self.seed, chunk_index, attempt).random()
            raw *= 1.0 + self.jitter * u
        return min(raw, self.backoff_max)

    def __repr__(self):
        return ("RetryPolicy(max_attempts=%d, backoff_base=%g, "
                "retry_on=%s)" % (self.max_attempts, self.backoff_base,
                                  list(self.retry_on)))


def resolve_retry(retry):
    """Coerce a ``retry`` argument into a :class:`RetryPolicy` or None.

    Accepts ``None`` (no retries), an existing policy, or an int --
    the CLI's ``--retries N`` -- read as ``max_attempts`` (``N <= 1``
    means no retries).
    """
    if retry is None:
        return None
    if isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, (int, np.integer)) and not isinstance(retry, bool):
        attempts = int(retry)
        if attempts < 1:
            raise ResilienceError(
                "retries must be >= 1, got %d" % attempts)
        if attempts == 1:
            return None
        return RetryPolicy(max_attempts=attempts)
    raise ResilienceError(
        "retry must be None, an int, or a RetryPolicy; got %r" % (retry,))


# -- fault injection -------------------------------------------------------

class FaultPlan:
    """Injected faults at chosen ``chunk x attempt`` coordinates.

    Parameters
    ----------
    faults : iterable of (chunk_index, attempt, action)
        ``action`` is one of ``"raise"`` (the task raises
        :class:`~repro.core.exceptions.InjectedFault`), ``"hang"``
        (the task sleeps ``hang_seconds`` -- pair with a
        ``ParallelMap`` timeout), ``"kill"`` (the worker process exits
        without reporting, exercising crash detection), or ``"nan"``
        (the task's result is NaN-corrupted, exercising result
        validation).  At most one fault per coordinate.
    hang_seconds : float
        Sleep length for ``hang`` faults (long enough to trip any
        sensible timeout).
    exit_code : int
        Exit status ``kill`` faults die with.

    Notes
    -----
    On the serial path there is no worker process to kill and no
    timeout enforcement, so ``kill`` and ``hang`` degrade to
    ``raise`` there -- the fault still surfaces as a retryable
    failure instead of taking down (or hanging) the host process.
    """

    ACTIONS = ("raise", "hang", "kill", "nan")

    def __init__(self, faults=(), hang_seconds=3600.0, exit_code=17):
        self._faults = {}
        for entry in faults:
            try:
                chunk_index, attempt, action = entry
            except (TypeError, ValueError):
                raise ResilienceError(
                    "fault entries are (chunk_index, attempt, action); "
                    "got %r" % (entry,))
            if action not in self.ACTIONS:
                raise ResilienceError(
                    "unknown fault action %r; choose from %s"
                    % (action, list(self.ACTIONS)))
            key = (int(chunk_index), int(attempt))
            if key[0] < 0 or key[1] < 1:
                raise ResilienceError(
                    "fault coordinates must have chunk_index >= 0 and "
                    "attempt >= 1; got %r" % (entry,))
            if key in self._faults:
                raise ResilienceError(
                    "duplicate fault at chunk %d attempt %d" % key)
            self._faults[key] = str(action)
        self.hang_seconds = float(hang_seconds)
        self.exit_code = int(exit_code)

    @classmethod
    def from_spec(cls, spec, **kwargs):
        """Parse ``"chunk:attempt:action[,chunk:attempt:action...]"``.

        The format of the ``REPRO_FAULTS`` environment variable, e.g.
        ``REPRO_FAULTS="0:1:raise,2:1:kill"``.
        """
        faults = []
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) != 3:
                raise ResilienceError(
                    "bad fault spec %r (want chunk:attempt:action)" % part)
            try:
                chunk_index, attempt = int(pieces[0]), int(pieces[1])
            except ValueError:
                raise ResilienceError(
                    "bad fault coordinates in %r (want integers)" % part)
            faults.append((chunk_index, attempt, pieces[2]))
        return cls(faults, **kwargs)

    def spec(self):
        """Canonical spec string (round-trips through :meth:`from_spec`)."""
        return ",".join("%d:%d:%s" % (chunk, attempt, action)
                        for (chunk, attempt), action
                        in sorted(self._faults.items()))

    def action_for(self, chunk_index, attempt):
        """The injected action at this coordinate, or None."""
        return self._faults.get((int(chunk_index), int(attempt)))

    def faults(self):
        """The plan's entries as ``(chunk, attempt, action)`` tuples."""
        return [(chunk, attempt, action)
                for (chunk, attempt), action
                in sorted(self._faults.items())]

    def __len__(self):
        return len(self._faults)

    def __repr__(self):
        return "FaultPlan(%r)" % self.spec()


_active_plan = None


def set_fault_plan(plan):
    """Install ``plan`` process-wide (None clears); returns the previous.

    The programmatic override wins over the ``REPRO_FAULTS``
    environment variable.
    """
    global _active_plan
    previous = _active_plan
    _active_plan = plan
    return previous


def active_fault_plan():
    """The fault plan the engine should apply right now, or None.

    Checks the programmatic override first, then ``REPRO_FAULTS``.
    """
    if _active_plan is not None:
        return _active_plan
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if spec:
        return FaultPlan.from_spec(spec)
    return None


@contextlib.contextmanager
def use_faults(plan):
    """Scoped fault injection: install ``plan``, restore the old one after.

    Accepts a :class:`FaultPlan` or a spec string.
    """
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def nan_corrupt(value):
    """A NaN-poisoned copy of ``value`` (arrays, scalars, containers).

    What a ``"nan"`` fault returns in place of the task's real result:
    structurally similar enough to pass shape-based handling, but
    guaranteed to fail any finiteness validation.
    """
    if isinstance(value, np.ndarray):
        return np.full(value.shape, np.nan)
    if isinstance(value, tuple):
        return tuple(nan_corrupt(item) for item in value)
    if isinstance(value, list):
        return [nan_corrupt(item) for item in value]
    if isinstance(value, dict):
        return {key: nan_corrupt(item) for key, item in value.items()}
    return float("nan")


def run_task(fn, task, chunk_index, attempt, plan, serial=False):
    """Execute one chunk attempt, applying any injected fault.

    The single execution point both the worker entry point and the
    serial path go through; ``serial=True`` degrades ``kill``/``hang``
    to ``raise`` (there is no worker to kill and no timeout to trip).
    """
    action = None if plan is None else plan.action_for(chunk_index, attempt)
    if action in ("kill", "hang") and serial:
        raise InjectedFault(
            "injected %r at chunk %d attempt %d (degraded to raise on "
            "the serial path)" % (action, chunk_index, attempt))
    if action == "raise":
        raise InjectedFault(
            "injected failure at chunk %d attempt %d"
            % (chunk_index, attempt))
    if action == "hang":
        time.sleep(plan.hang_seconds)
        raise InjectedFault(
            "injected hang at chunk %d attempt %d outlived its %.3gs "
            "sleep without a timeout" % (chunk_index, attempt,
                                         plan.hang_seconds))
    if action == "kill":
        os._exit(plan.exit_code)
    value = fn(task)
    if action == "nan":
        return nan_corrupt(value)
    return value


# -- checkpoint / resume ---------------------------------------------------

def rng_fingerprint(seed_or_rng):
    """JSON-able description of an RNG argument for checkpoint metadata.

    Resuming a checkpointed run only reproduces the uninterrupted run
    when the per-chunk streams respawn identically, which requires the
    same root seed (or a generator in the same spawn state).  This
    fingerprint captures exactly that, so :class:`Checkpointer` can
    refuse a mismatched resume.  Call it *before* spawning child
    generators -- spawning advances ``n_children_spawned``.
    """
    if seed_or_rng is None:
        return None
    if isinstance(seed_or_rng, (int, np.integer)):
        return ["seed", int(seed_or_rng)]
    if isinstance(seed_or_rng, np.random.Generator):
        seq = getattr(seed_or_rng.bit_generator, "seed_seq", None)
        if seq is None:
            return ["generator", None]
        entropy = seq.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(word) for word in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return ["generator", entropy, [int(k) for k in seq.spawn_key],
                int(seq.n_children_spawned)]
    raise TypeError(
        "expected None, int seed, or numpy Generator; got %r"
        % (seed_or_rng,))


def jsonable(value):
    """``value`` if it survives a JSON round trip, else its ``repr``.

    Checkpoint metadata must serialize; arbitrary caller kwargs (numpy
    scalars, parameter objects) degrade to their repr, which still
    mismatch-detects reliably.
    """
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return repr(value)


class Checkpointer:
    """Chunk-result checkpoint file: record as you go, skip on resume.

    Parameters
    ----------
    path : str
        Checkpoint file to write (atomically, via rename).  When it
        already exists it is also the resume source unless
        ``resume_from`` names another file.
    kind : str
        Workload tag (``"dmm-ensemble"``, ``"quantum-shots"``, ...);
        resuming a file of a different kind is an error.
    meta : dict, optional
        Workload fingerprint (chunking, seeds via
        :func:`rng_fingerprint`, physics parameters).  Must be
        JSON-able and must match the resumed file's.
    encode, decode : callable, optional
        Map one chunk result to/from its JSON representation
        (default: identity).
    every : int
        Flush to disk after this many newly recorded chunks (1 ==
        every chunk; the final flush always happens).
    resume_from : str, optional
        Explicit resume source (must exist); defaults to ``path`` when
        that exists.
    restart_on_mismatch : bool
        Start empty instead of raising when the resume source's
        kind/meta disagree -- for rolling checkpoint files that
        legitimately change workloads (e.g. Shor's per-base order
        finding).

    Telemetry: every flush increments ``resilience.checkpoints`` and
    adds the document size to ``resilience.checkpoint_bytes``;
    restored chunks count into ``resilience.chunks_restored``.
    """

    def __init__(self, path, kind, meta=None, encode=None, decode=None,
                 every=1, resume_from=None, restart_on_mismatch=False):
        if int(every) < 1:
            raise ResilienceError("every must be >= 1, got %r" % (every,))
        self.path = str(path)
        self.kind = str(kind)
        self.meta = jsonable(dict(meta) if meta else {})
        self._encode = encode if encode is not None else (lambda value: value)
        self._decode = decode if decode is not None else (lambda value: value)
        self.every = int(every)
        self.restart_on_mismatch = bool(restart_on_mismatch)
        self._completed = {}
        self._dirty = 0
        if resume_from is not None and not os.path.exists(resume_from):
            raise ResilienceError(
                "resume checkpoint %r does not exist" % (resume_from,))
        source = resume_from if resume_from is not None else (
            self.path if os.path.exists(self.path) else None)
        if source is not None:
            self._load(source)

    def _load(self, source):
        try:
            with open(source) as handle:
                document = json.load(handle)
        except (OSError, ValueError) as error:
            raise ResilienceError(
                "cannot read checkpoint %r: %s" % (source, error))
        if document.get("format") != CHECKPOINT_FORMAT:
            raise ResilienceError(
                "checkpoint %r has format %r, expected %r"
                % (source, document.get("format"), CHECKPOINT_FORMAT))
        file_fingerprint = {"kind": document.get("kind"),
                            "meta": jsonable(document.get("meta", {}))}
        run_fingerprint = {"kind": self.kind, "meta": self.meta}
        if file_fingerprint != run_fingerprint:
            if self.restart_on_mismatch:
                return
            mismatch = "kind %r != %r" \
                % (file_fingerprint["kind"], self.kind) \
                if file_fingerprint["kind"] != self.kind \
                else "meta %r != %r" % (file_fingerprint["meta"], self.meta)
            raise ResilienceError(
                "checkpoint %r does not match this run (%s); refusing "
                "to resume: checkpoint fingerprint %r != this run's "
                "fingerprint %r" % (source, mismatch, file_fingerprint,
                                    run_fingerprint))
        chunks = document.get("chunks", {})
        self._completed = {int(index): self._decode(value)
                           for index, value in chunks.items()}
        registry = telemetry.get_registry()
        if registry.enabled and self._completed:
            registry.counter("resilience.chunks_restored").inc(
                len(self._completed))

    def completed(self):
        """Decoded results of the already-finished chunks, by index."""
        return dict(self._completed)

    def record(self, index, value):
        """Record one finished chunk; flushes every ``every`` records."""
        self._completed[int(index)] = value
        self._dirty += 1
        if self._dirty >= self.every:
            self.flush()

    def flush(self):
        """Write the checkpoint document atomically (no-op when clean)."""
        if not self._dirty:
            return
        document = {
            "format": CHECKPOINT_FORMAT,
            "kind": self.kind,
            "meta": self.meta,
            "chunks": {str(index): self._encode(value)
                       for index, value in sorted(self._completed.items())},
        }
        payload = json.dumps(document)
        scratch = self.path + ".tmp"
        with open(scratch, "w") as handle:
            handle.write(payload)
            handle.write("\n")
        os.replace(scratch, self.path)
        self._dirty = 0
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter("resilience.checkpoints").inc()
            registry.counter("resilience.checkpoint_bytes").inc(
                len(payload) + 1)

    def __len__(self):
        return len(self._completed)

    def __repr__(self):
        return "Checkpointer(path=%r, kind=%s, completed=%d)" % (
            self.path, self.kind, len(self._completed))
