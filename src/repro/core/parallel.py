"""Chunked process-pool execution engine for the library's fan-out paths.

The paper frames all three computing models as *accelerators* beside a
classical host (Fig. 1/2); every hot workload in this reproduction --
DMM time-to-solution ensembles, quantum shot loops, oscillator
image-patch scoring -- is a bag of independent kernels.  This module is
the host-side scheduler for those bags:

* :func:`chunk_sizes` / :func:`chunk_list` -- deterministic chunking
  that depends only on the task count and the chunk size, **never** on
  the worker count, so results are bit-identical whether a run uses one
  worker or eight,
* :class:`ParallelMap` -- maps a module-level function over chunk
  payloads on a bounded set of worker processes, with ordered result
  collection, per-task timeouts, and crash recovery (a dead worker marks
  its chunk failed and the run continues),
* :class:`TaskFailure` -- the ordered-result placeholder for a chunk
  that raised, timed out, or whose worker died.

Seeding contract
----------------
Callers split their workload into chunks first, then spawn one child
generator per chunk with :func:`repro.core.rngs.spawn_rngs` and ship the
generator inside the chunk payload.  Because both the chunking and the
spawn are functions of ``(task count, chunk size, root seed)`` alone,
the worker count only decides *where* a chunk runs, never *what* it
computes -- the determinism suite (``tests/core/test_parallel.py``)
holds the library to that.

Telemetry
---------
When the active registry is live at :meth:`ParallelMap.map` time, each
worker process records into its own fresh
:class:`~repro.core.telemetry.MetricsRegistry` (never into inherited
parent sinks), and the worker's snapshot and buffered trace events are
shipped back with its result and merged into the parent registry at
join.  The engine itself records ``parallel.tasks``,
``parallel.failures``, and the ``parallel.worker_seconds`` histogram,
and wraps each map in a ``parallel.map`` span.

Serial fallback
---------------
``workers=1`` (the default, also reachable through the ``REPRO_WORKERS``
environment variable), a single-task map, or a platform without a usable
multiprocessing start method all run the same chunk functions inline in
the parent process -- same results, no subprocesses, no pickling.
"""

import multiprocessing
import os
import queue as queue_module
import time

from . import telemetry
from .exceptions import ParallelError
from .tracing import ListSink

#: Default number of chunks a workload is split into when the caller
#: gives no explicit chunk size.  A constant (rather than anything
#: derived from the worker count) so chunking -- and therefore per-chunk
#: RNG spawning -- is identical across worker counts.
DEFAULT_CHUNKS = 8

#: Environment variable consulted when ``workers=None``.
WORKERS_ENV = "REPRO_WORKERS"

#: Grace period (seconds) for a result to drain out of a worker that
#: already exited; after this the chunk is declared crashed.
_DRAIN_GRACE_S = 0.5


def resolve_workers(workers=None):
    """Coerce a ``workers`` argument into a positive int.

    ``None`` consults the ``REPRO_WORKERS`` environment variable and
    falls back to 1 (serial) -- so library call sites stay serial unless
    a caller, the CLI's ``--workers``, or the environment opts in.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                "%s must be an integer, got %r" % (WORKERS_ENV, raw))
    workers = int(workers)
    if workers < 1:
        raise ParallelError("workers must be >= 1, got %d" % workers)
    return workers


def default_chunk_size(total):
    """Chunk size splitting ``total`` tasks into ~:data:`DEFAULT_CHUNKS`."""
    if total < 0:
        raise ParallelError("total must be non-negative, got %d" % total)
    return max(1, -(-total // DEFAULT_CHUNKS))


def chunk_sizes(total, chunk_size=None):
    """Deterministic chunk sizes covering ``total`` work units.

    Every chunk has ``chunk_size`` units except a smaller trailing
    remainder.  Depends only on ``(total, chunk_size)`` -- never on the
    worker count (see the module's seeding contract).
    """
    if total < 0:
        raise ParallelError("total must be non-negative, got %d" % total)
    if total == 0:
        return []
    size = default_chunk_size(total) if chunk_size is None else int(chunk_size)
    if size < 1:
        raise ParallelError("chunk_size must be >= 1, got %d" % size)
    full, remainder = divmod(total, size)
    sizes = [size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


def chunk_list(items, chunk_size=None):
    """Split ``items`` into the :func:`chunk_sizes` chunks, in order."""
    items = list(items)
    chunks = []
    start = 0
    for size in chunk_sizes(len(items), chunk_size):
        chunks.append(items[start:start + size])
        start += size
    return chunks


class TaskFailure:
    """Ordered-result placeholder for a chunk that did not produce a value.

    Attributes
    ----------
    index : int
        The chunk's position in the task list (results stay ordered).
    reason : str
        ``"error"`` (the function raised), ``"timeout"`` (the per-task
        deadline passed and the worker was terminated), or ``"crashed"``
        (the worker process died without reporting a result).
    message : str
        Human-readable detail (exception repr, exit code, ...).
    """

    __slots__ = ("index", "reason", "message")

    def __init__(self, index, reason, message=""):
        self.index = int(index)
        self.reason = str(reason)
        self.message = str(message)

    def __bool__(self):
        # Falsy so ``[r for r in results if r]`` drops failures.
        return False

    def __repr__(self):
        return "TaskFailure(index=%d, reason=%s, message=%r)" % (
            self.index, self.reason, self.message)


def _pick_context(start_method=None):
    """A usable multiprocessing context, or None (forces serial).

    Prefers ``fork`` (cheap, inherits the parent's loaded state); falls
    back to ``spawn`` elsewhere; returns None when the platform offers
    neither -- :class:`ParallelMap` then degrades gracefully to serial.
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            return None
        return multiprocessing.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


def _worker_main(fn, task, index, out_queue, instrument):
    """Subprocess entry point: run one chunk, ship result + telemetry.

    Always replaces the inherited registry: a forked child must never
    write into the parent's sinks (a JSONL sink would interleave), so it
    records into a fresh registry (with a buffering sink) when telemetry
    is on, or into the null registry when it is off.
    """
    start = time.perf_counter()
    sink = None
    try:
        if instrument:
            registry = telemetry.MetricsRegistry()
            sink = registry.add_sink(ListSink())
        else:
            registry = telemetry.NULL_REGISTRY
        with telemetry.use_registry(registry):
            value = fn(task)
        elapsed = time.perf_counter() - start
        payload = (registry.snapshot(), sink.events) if instrument else None
        out_queue.put((index, "ok", value, payload, elapsed))
    except BaseException as error:  # noqa: BLE001 -- report, don't die silent
        elapsed = time.perf_counter() - start
        message = "%s: %s" % (type(error).__name__, error)
        payload = (registry.snapshot(), sink.events) if sink is not None \
            else None
        out_queue.put((index, "error", message, payload, elapsed))


class ParallelMap:
    """Map a function over chunk payloads on a bounded worker pool.

    Parameters
    ----------
    workers : int or None
        Maximum concurrent worker processes.  ``None`` consults
        ``REPRO_WORKERS`` (default 1 == serial inline execution).
    timeout : float or None
        Per-task wall-clock budget in seconds.  A worker past its
        deadline is terminated and its chunk marked failed
        (``reason="timeout"``).  Not enforceable on the serial path
        (there is no one to preempt the task).
    start_method : str or None
        Force a multiprocessing start method (mostly for tests); the
        default prefers ``fork`` and degrades to serial when the
        platform has no usable method.

    Notes
    -----
    ``fn`` must be a module-level callable and tasks/results must be
    picklable (both are inherited for free under ``fork``, but the
    contract keeps callers portable to ``spawn`` platforms).
    """

    def __init__(self, workers=None, timeout=None, start_method=None):
        self.workers = resolve_workers(workers)
        if timeout is not None and timeout <= 0:
            raise ParallelError("timeout must be positive, got %r" % timeout)
        self.timeout = timeout
        self.start_method = start_method

    def map(self, fn, tasks, on_error="raise"):
        """Run ``fn`` over ``tasks``; return results in task order.

        ``on_error="raise"`` re-raises the first failure as a
        :class:`ParallelError` (after every task has been given the
        chance to finish); ``on_error="return"`` leaves a
        :class:`TaskFailure` in the failed slots instead.
        """
        if on_error not in ("raise", "return"):
            raise ParallelError(
                "on_error must be 'raise' or 'return', got %r" % on_error)
        tasks = list(tasks)
        if not tasks:
            return []
        workers = min(self.workers, len(tasks))
        registry = telemetry.get_registry()
        with telemetry.span("parallel.map", tasks=len(tasks),
                            workers=workers) as map_span:
            context = _pick_context(self.start_method) if workers > 1 \
                else None
            if context is None:
                results = self._map_serial(fn, tasks, registry)
            else:
                results = self._map_processes(fn, tasks, workers, context,
                                              registry)
            failures = [r for r in results if isinstance(r, TaskFailure)]
            if map_span:
                map_span.set_attr("failures", len(failures))
        if failures and on_error == "raise":
            first = failures[0]
            raise ParallelError(
                "%d of %d parallel task(s) failed; first: task %d %s (%s)"
                % (len(failures), len(tasks), first.index, first.reason,
                   first.message))
        return results

    # -- serial fallback --------------------------------------------------

    def _map_serial(self, fn, tasks, registry):
        """Inline execution: same chunk functions, no subprocesses."""
        enabled = registry.enabled
        results = []
        for index, task in enumerate(tasks):
            start = time.perf_counter()
            try:
                value = fn(task)
            except Exception as error:  # noqa: BLE001
                value = TaskFailure(index, "error", "%s: %s"
                                    % (type(error).__name__, error))
                if enabled:
                    registry.counter("parallel.failures").inc()
            if enabled:
                registry.counter("parallel.tasks").inc()
                registry.histogram("parallel.worker_seconds").observe(
                    time.perf_counter() - start)
            results.append(value)
        return results

    # -- process pool -----------------------------------------------------

    def _map_processes(self, fn, tasks, workers, context, registry):
        """Bounded process-per-chunk scheduler with timeout + crash care."""
        instrument = registry.enabled
        out_queue = context.Queue()
        pending = list(enumerate(tasks))
        live = {}        # index -> (process, deadline or None)
        draining = {}    # index -> (process, drain deadline)
        outcomes = {}    # index -> ("ok", value, payload, elapsed) | failure
        total = len(tasks)

        try:
            while len(outcomes) < total:
                while pending and len(live) < workers:
                    index, task = pending.pop(0)
                    process = context.Process(
                        target=_worker_main,
                        args=(fn, task, index, out_queue, instrument),
                        daemon=True)
                    process.start()
                    deadline = None if self.timeout is None \
                        else time.monotonic() + self.timeout
                    live[index] = (process, deadline)

                self._drain(out_queue, outcomes)
                now = time.monotonic()

                for index in list(live):
                    process, deadline = live[index]
                    if index in outcomes:
                        process.join(timeout=1.0)
                        del live[index]
                    elif deadline is not None and now > deadline:
                        process.terminate()
                        process.join(timeout=1.0)
                        outcomes[index] = TaskFailure(
                            index, "timeout",
                            "exceeded %.3gs" % self.timeout)
                        del live[index]
                    elif not process.is_alive():
                        # Exited without a visible result: give the queue
                        # feeder a moment before declaring a crash.
                        draining[index] = (process,
                                           now + _DRAIN_GRACE_S)
                        del live[index]

                for index in list(draining):
                    process, drain_deadline = draining[index]
                    if index in outcomes:
                        del draining[index]
                    elif time.monotonic() > drain_deadline:
                        outcomes[index] = TaskFailure(
                            index, "crashed",
                            "worker exited with code %r without a result"
                            % process.exitcode)
                        del draining[index]

                if len(outcomes) < total:
                    time.sleep(0.005)
        finally:
            for process, _deadline in list(live.values()) \
                    + list(draining.values()):
                if process.is_alive():
                    process.terminate()
                process.join(timeout=1.0)
            out_queue.close()

        return self._collect(outcomes, total, registry, instrument)

    @staticmethod
    def _drain(out_queue, outcomes):
        """Pull every currently available worker message off the queue."""
        while True:
            try:
                message = out_queue.get(timeout=0.02)
            except queue_module.Empty:
                return
            index, status, value, payload, elapsed = message
            if status == "ok":
                outcomes[index] = ("ok", value, payload, elapsed)
            else:
                outcomes[index] = ("error",
                                   TaskFailure(index, "error", value),
                                   payload, elapsed)

    @staticmethod
    def _collect(outcomes, total, registry, instrument):
        """Ordered results + deterministic telemetry merge at join.

        Worker registries are merged (and their buffered trace events
        re-emitted, tagged with the worker's chunk index) in chunk order
        regardless of completion order, so sink output and merged
        metrics are reproducible.
        """
        enabled = registry.enabled
        results = []
        for index in range(total):
            outcome = outcomes[index]
            if isinstance(outcome, TaskFailure):      # timeout / crashed
                if enabled:
                    registry.counter("parallel.tasks").inc()
                    registry.counter("parallel.failures").inc()
                results.append(outcome)
                continue
            status, value, payload, elapsed = outcome
            if enabled:
                registry.counter("parallel.tasks").inc()
                registry.histogram("parallel.worker_seconds").observe(
                    elapsed)
                if status != "ok":
                    registry.counter("parallel.failures").inc()
            if instrument and payload is not None:
                snapshot, events = payload
                registry.merge(snapshot)
                for event in events:
                    event.setdefault("worker", index)
                    registry.emit(event)
            results.append(value)
        return results


def parallel_map(fn, tasks, workers=None, timeout=None, on_error="raise"):
    """One-shot convenience wrapper around :class:`ParallelMap`."""
    return ParallelMap(workers=workers, timeout=timeout).map(
        fn, tasks, on_error=on_error)
