"""Chunked process-pool execution engine for the library's fan-out paths.

The paper frames all three computing models as *accelerators* beside a
classical host (Fig. 1/2); every hot workload in this reproduction --
DMM time-to-solution ensembles, quantum shot loops, oscillator
image-patch scoring -- is a bag of independent kernels.  This module is
the host-side scheduler for those bags:

* :func:`chunk_sizes` / :func:`chunk_list` -- deterministic chunking
  that depends only on the task count and the chunk size, **never** on
  the worker count, so results are bit-identical whether a run uses one
  worker or eight,
* :class:`ParallelMap` -- maps a module-level function over chunk
  payloads on a bounded set of worker processes, with ordered result
  collection, per-task timeouts, crash recovery (a dead worker marks
  its chunk failed and the run continues), per-chunk retries
  (:class:`~repro.core.resilience.RetryPolicy`), result validation,
  checkpoint/resume (:class:`~repro.core.resilience.Checkpointer`), and
  content-addressed chunk reuse (:class:`~repro.core.cache.CacheSpec` --
  a cached chunk skips dispatch and replays bit-identically),
* :class:`TaskFailure` -- the ordered-result placeholder for a chunk
  that raised, timed out, failed validation, or whose worker died.

Seeding contract
----------------
Callers split their workload into chunks first, then spawn one child
generator per chunk with :func:`repro.core.rngs.spawn_rngs` and ship the
generator inside the chunk payload.  Because both the chunking and the
spawn are functions of ``(task count, chunk size, root seed)`` alone,
the worker count only decides *where* a chunk runs, never *what* it
computes -- the determinism suite (``tests/core/test_parallel.py``)
holds the library to that.

Retries preserve the contract: a re-dispatched chunk re-runs its
*original* payload (workers never mutate the parent's copy; the serial
path deep-copies per attempt when retries or fault injection are
active), so a chunk that eventually succeeds returns exactly what a
fault-free run returns.  See :mod:`repro.core.resilience` and
``docs/resilience.md``.

Telemetry
---------
When the active registry is live at :meth:`ParallelMap.map` time, each
worker process records into its own fresh
:class:`~repro.core.telemetry.MetricsRegistry` (never into inherited
parent sinks), and the worker's snapshot and buffered trace events are
shipped back with its result and merged into the parent registry at
join.  The engine itself records ``parallel.tasks`` (one per chunk
*execution*, so retried chunks count each attempt),
``parallel.failures``, ``parallel.retries``, ``parallel.giveups``, and
the ``parallel.worker_seconds`` histogram, and wraps each map in a
``parallel.map`` span.

Serial fallback
---------------
``workers=1`` (the default, also reachable through the ``REPRO_WORKERS``
environment variable), a single-task map, or a platform without a usable
multiprocessing start method all run the same chunk functions inline in
the parent process -- same results, no subprocesses, no pickling.  The
per-task ``timeout`` cannot be enforced there (nothing can preempt the
inline call); the engine says so once per process with a
``RuntimeWarning`` plus a ``parallel.timeout_unenforced`` counter/event
instead of silently ignoring the budget.
"""

import copy
import multiprocessing
import os
import queue as queue_module
import time
import warnings

from . import resilience, telemetry
from .exceptions import ParallelError
from .tracing import ListSink

#: Default number of chunks a workload is split into when the caller
#: gives no explicit chunk size.  A constant (rather than anything
#: derived from the worker count) so chunking -- and therefore per-chunk
#: RNG spawning -- is identical across worker counts.
DEFAULT_CHUNKS = 8

#: Environment variable consulted when ``workers=None``.
WORKERS_ENV = "REPRO_WORKERS"

#: Grace period (seconds) for a result to drain out of a worker that
#: already exited; after this the chunk is declared crashed.
_DRAIN_GRACE_S = 0.5


def resolve_workers(workers=None):
    """Coerce a ``workers`` argument into a positive int.

    ``None`` consults the ``REPRO_WORKERS`` environment variable and
    falls back to 1 (serial) -- so library call sites stay serial unless
    a caller, the CLI's ``--workers``, or the environment opts in.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                "%s must be an integer, got %r" % (WORKERS_ENV, raw))
    workers = int(workers)
    if workers < 1:
        raise ParallelError("workers must be >= 1, got %d" % workers)
    return workers


def default_chunk_size(total):
    """Chunk size splitting ``total`` tasks into ~:data:`DEFAULT_CHUNKS`."""
    if total < 0:
        raise ParallelError("total must be non-negative, got %d" % total)
    return max(1, -(-total // DEFAULT_CHUNKS))


def chunk_sizes(total, chunk_size=None):
    """Deterministic chunk sizes covering ``total`` work units.

    Every chunk has ``chunk_size`` units except a smaller trailing
    remainder.  Depends only on ``(total, chunk_size)`` -- never on the
    worker count (see the module's seeding contract).
    """
    if total < 0:
        raise ParallelError("total must be non-negative, got %d" % total)
    if total == 0:
        return []
    size = default_chunk_size(total) if chunk_size is None else int(chunk_size)
    if size < 1:
        raise ParallelError("chunk_size must be >= 1, got %d" % size)
    full, remainder = divmod(total, size)
    sizes = [size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


def chunk_list(items, chunk_size=None):
    """Split ``items`` into the :func:`chunk_sizes` chunks, in order."""
    items = list(items)
    chunks = []
    start = 0
    for size in chunk_sizes(len(items), chunk_size):
        chunks.append(items[start:start + size])
        start += size
    return chunks


class TaskFailure:
    """Ordered-result placeholder for a chunk that did not produce a value.

    Filter failures out of a mixed result list with
    ``[r for r in results if not isinstance(r, TaskFailure)]``.
    (``TaskFailure`` is deliberately *truthy* like any other object: an
    earlier falsy ``__bool__`` made ``if r`` filtering silently drop
    legitimate falsy results such as ``0`` or ``[]``.)

    Attributes
    ----------
    index : int
        The chunk's position in the task list (results stay ordered).
    reason : str
        ``"error"`` (the function raised), ``"timeout"`` (the per-task
        deadline passed and the worker was terminated), ``"crashed"``
        (the worker process died without reporting a result), or
        ``"invalid"`` (the result failed the caller's ``validate``
        hook).
    message : str
        Human-readable detail (exception repr, exit code, ...).
    """

    __slots__ = ("index", "reason", "message")

    def __init__(self, index, reason, message=""):
        self.index = int(index)
        self.reason = str(reason)
        self.message = str(message)

    def __repr__(self):
        return "TaskFailure(index=%d, reason=%s, message=%r)" % (
            self.index, self.reason, self.message)


def _pick_context(start_method=None):
    """A usable multiprocessing context, or None (forces serial).

    Prefers ``fork`` (cheap, inherits the parent's loaded state); falls
    back to ``spawn`` elsewhere; returns None when the platform offers
    neither -- :class:`ParallelMap` then degrades gracefully to serial.
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            return None
        return multiprocessing.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


_timeout_warning_emitted = False


def _reset_timeout_warning():
    """Re-arm the one-time serial-timeout warning (tests only)."""
    global _timeout_warning_emitted
    _timeout_warning_emitted = False


def _warn_timeout_unenforced(timeout, registry):
    """Flag a ``timeout=`` that the serial path cannot enforce.

    The telemetry counter/event fire on every affected ``map()`` call;
    the ``RuntimeWarning`` fires once per process so a looped serial
    caller is not spammed.
    """
    global _timeout_warning_emitted
    if registry.enabled:
        registry.counter("parallel.timeout_unenforced").inc()
        telemetry.event("parallel.timeout_unenforced", timeout=timeout)
    if not _timeout_warning_emitted:
        _timeout_warning_emitted = True
        warnings.warn(
            "ParallelMap(timeout=%g) is not enforceable on the serial "
            "path (workers=1 or no multiprocessing start method); the "
            "task(s) will run to completion" % timeout,
            RuntimeWarning, stacklevel=3)


def _worker_main(fn, task, index, attempt, plan, out_queue, instrument):
    """Subprocess entry point: run one chunk, ship result + telemetry.

    Always replaces the inherited registry: a forked child must never
    write into the parent's sinks (a JSONL sink would interleave), so it
    records into a fresh registry (with a buffering sink) when telemetry
    is on, or into the null registry when it is off.
    """
    start = time.perf_counter()
    sink = None
    try:
        if instrument:
            registry = telemetry.MetricsRegistry()
            sink = registry.add_sink(ListSink())
        else:
            registry = telemetry.NULL_REGISTRY
        with telemetry.use_registry(registry):
            value = resilience.run_task(fn, task, index, attempt, plan)
        elapsed = time.perf_counter() - start
        payload = (registry.snapshot(), sink.events) if instrument else None
        out_queue.put((index, "ok", value, payload, elapsed))
    except BaseException as error:  # noqa: BLE001 -- report, don't die silent
        elapsed = time.perf_counter() - start
        message = "%s: %s" % (type(error).__name__, error)
        payload = (registry.snapshot(), sink.events) if sink is not None \
            else None
        out_queue.put((index, "error", message, payload, elapsed))


class ParallelMap:
    """Map a function over chunk payloads on a bounded worker pool.

    Parameters
    ----------
    workers : int or None
        Maximum concurrent worker processes.  ``None`` consults
        ``REPRO_WORKERS`` (default 1 == serial inline execution).
    timeout : float or None
        Per-task wall-clock budget in seconds.  A worker past its
        deadline is terminated and its chunk marked failed
        (``reason="timeout"``).  Not enforceable on the serial path --
        the engine warns once (``parallel.timeout_unenforced``) instead
        of silently dropping the budget.
    start_method : str or None
        Force a multiprocessing start method (mostly for tests); the
        default prefers ``fork`` and degrades to serial when the
        platform has no usable method.

    Notes
    -----
    ``fn`` must be a module-level callable and tasks/results must be
    picklable (both are inherited for free under ``fork``, but the
    contract keeps callers portable to ``spawn`` platforms).
    """

    def __init__(self, workers=None, timeout=None, start_method=None):
        self.workers = resolve_workers(workers)
        if timeout is not None and timeout <= 0:
            raise ParallelError("timeout must be positive, got %r" % timeout)
        self.timeout = timeout
        self.start_method = start_method

    def map(self, fn, tasks, on_error="raise", retry=None, validate=None,
            checkpoint=None, cache=None):
        """Run ``fn`` over ``tasks``; return results in task order.

        Parameters
        ----------
        on_error : str
            ``"raise"`` re-raises the first *permanent* failure as a
            :class:`ParallelError` (after every task has been given the
            chance to finish and retry); ``"return"`` leaves a
            :class:`TaskFailure` in the failed slots instead.
        retry : None, int, or RetryPolicy
            Per-chunk retry budget
            (:func:`repro.core.resilience.resolve_retry`).  A failed
            chunk whose reason the policy retries is re-dispatched with
            its original payload -- results stay bit-identical to a
            fault-free run -- after the policy's deterministic backoff
            delay.  Failures that exhaust the budget (or are not
            retryable) count into ``parallel.giveups``.
        validate : callable, optional
            Called on each successful result; returning falsy converts
            the result into ``TaskFailure(reason="invalid")`` --
            retryable -- so silently corrupted output (NaNs from a sick
            accelerator) is caught instead of propagated.
        checkpoint : Checkpointer, optional
            Chunk results are recorded as they complete
            (:meth:`~repro.core.resilience.Checkpointer.record`) and
            chunks already completed in a resumed checkpoint are
            skipped -- their recorded results fill the output slots
            without re-execution.
        cache : CacheSpec, optional
            Content-addressed chunk reuse
            (:class:`~repro.core.cache.CacheSpec`).  Before dispatch,
            each still-pending chunk index is looked up under the
            workload fingerprint: hits fill their output slots (and the
            checkpoint, when one is active) without executing; every
            freshly computed, validated chunk value is stored for the
            next run.  Failures are never cached.  The checkpoint is
            consulted first -- a resumed run trusts its own recorded
            results over the shared cache.
        """
        if on_error not in ("raise", "return"):
            raise ParallelError(
                "on_error must be 'raise' or 'return', got %r" % on_error)
        tasks = list(tasks)
        if not tasks:
            return []
        retry = resilience.resolve_retry(retry)
        plan = resilience.active_fault_plan()
        total = len(tasks)
        registry = telemetry.get_registry()
        outcomes = {}
        if checkpoint is not None:
            for index, value in checkpoint.completed().items():
                if 0 <= index < total:
                    outcomes[index] = value
        if cache is not None:
            for index in range(total):
                if index in outcomes:
                    continue
                hit, value = cache.lookup(index)
                if hit:
                    outcomes[index] = value
                    if checkpoint is not None:
                        checkpoint.record(index, value)
        pending = [(index, task) for index, task in enumerate(tasks)
                   if index not in outcomes]
        workers = min(self.workers, total)
        with telemetry.span("parallel.map", tasks=total,
                            workers=workers) as map_span:
            # The context is chosen once per map and reused for every
            # retry round: a round that shrinks to one pending chunk
            # must NOT fall back to serial, or the timeout (and with it
            # hang recovery) would silently stop being enforced.
            context = _pick_context(self.start_method) if workers > 1 \
                else None
            if context is None and self.timeout is not None and pending:
                _warn_timeout_unenforced(self.timeout, registry)
            copy_tasks = retry is not None or plan is not None
            attempt = 1
            while pending:
                if context is None:
                    round_values = self._run_serial(
                        fn, pending, registry, attempt, plan, copy_tasks)
                else:
                    round_values = self._run_processes(
                        fn, pending, workers, context, registry, attempt,
                        plan)
                retry_pairs = []
                for index, task in pending:
                    value = round_values[index]
                    if validate is not None \
                            and not isinstance(value, TaskFailure) \
                            and not validate(value):
                        value = TaskFailure(
                            index, "invalid",
                            "validate() rejected the chunk result")
                        if registry.enabled:
                            registry.counter("parallel.failures").inc()
                    if isinstance(value, TaskFailure):
                        if retry is not None \
                                and attempt < retry.max_attempts \
                                and retry.retries(value.reason):
                            retry_pairs.append((index, task))
                            if registry.enabled:
                                registry.counter("parallel.retries").inc()
                            continue
                        if retry is not None and registry.enabled:
                            registry.counter("parallel.giveups").inc()
                        outcomes[index] = value
                    else:
                        outcomes[index] = value
                        if checkpoint is not None:
                            checkpoint.record(index, value)
                        if cache is not None:
                            cache.store(value, index)
                if retry_pairs:
                    delay = max(retry.delay(index, attempt)
                                for index, _task in retry_pairs)
                    if delay > 0.0:
                        time.sleep(delay)
                pending = retry_pairs
                attempt += 1
            if checkpoint is not None:
                checkpoint.flush()
            results = [outcomes[index] for index in range(total)]
            failures = [r for r in results if isinstance(r, TaskFailure)]
            if map_span:
                map_span.set_attr("failures", len(failures))
        if failures and on_error == "raise":
            first = failures[0]
            raise ParallelError(
                "%d of %d parallel task(s) failed; first: task %d %s (%s)"
                % (len(failures), total, first.index, first.reason,
                   first.message))
        return results

    # -- serial fallback --------------------------------------------------

    @staticmethod
    def _run_serial(fn, pairs, registry, attempt, plan, copy_tasks):
        """Inline execution: same chunk functions, no subprocesses.

        When retries or fault injection are active the task payload is
        deep-copied per attempt: inline execution would otherwise
        mutate payload state (a chunk's spawned RNG advances in place),
        and a retry must replay the *original* payload to stay
        bit-identical with a fault-free run.  Worker processes get this
        for free -- fork copy-on-write and spawn pickling both leave
        the parent's payload untouched.
        """
        enabled = registry.enabled
        values = {}
        for index, task in pairs:
            start = time.perf_counter()
            payload = copy.deepcopy(task) if copy_tasks else task
            try:
                value = resilience.run_task(fn, payload, index, attempt,
                                            plan, serial=True)
            except Exception as error:  # noqa: BLE001
                value = TaskFailure(index, "error", "%s: %s"
                                    % (type(error).__name__, error))
                if enabled:
                    registry.counter("parallel.failures").inc()
            if enabled:
                registry.counter("parallel.tasks").inc()
                registry.histogram("parallel.worker_seconds").observe(
                    time.perf_counter() - start)
            values[index] = value
        return values

    # -- process pool -----------------------------------------------------

    def _run_processes(self, fn, pairs, workers, context, registry,
                       attempt, plan):
        """Bounded process-per-chunk scheduler with timeout + crash care."""
        instrument = registry.enabled
        out_queue = context.Queue()
        pending = list(pairs)
        live = {}        # index -> (process, deadline or None)
        draining = {}    # index -> (process, drain deadline)
        outcomes = {}    # index -> ("ok", value, payload, elapsed) | failure
        total = len(pending)

        try:
            while len(outcomes) < total:
                while pending and len(live) < workers:
                    index, task = pending.pop(0)
                    process = context.Process(
                        target=_worker_main,
                        args=(fn, task, index, attempt, plan, out_queue,
                              instrument),
                        daemon=True)
                    process.start()
                    deadline = None if self.timeout is None \
                        else time.monotonic() + self.timeout
                    live[index] = (process, deadline)

                self._drain(out_queue, outcomes)
                now = time.monotonic()

                for index in list(live):
                    process, deadline = live[index]
                    if index in outcomes:
                        process.join(timeout=1.0)
                        del live[index]
                    elif deadline is not None and now > deadline:
                        process.terminate()
                        process.join(timeout=1.0)
                        outcomes[index] = TaskFailure(
                            index, "timeout",
                            "exceeded %.3gs" % self.timeout)
                        del live[index]
                    elif not process.is_alive():
                        # Exited without a visible result: give the queue
                        # feeder a moment before declaring a crash.
                        draining[index] = (process,
                                           now + _DRAIN_GRACE_S)
                        del live[index]

                for index in list(draining):
                    process, drain_deadline = draining[index]
                    if index in outcomes:
                        del draining[index]
                    elif time.monotonic() > drain_deadline:
                        outcomes[index] = TaskFailure(
                            index, "crashed",
                            "worker exited with code %r without a result"
                            % process.exitcode)
                        del draining[index]

                if len(outcomes) < total:
                    time.sleep(0.005)
        finally:
            for process, _deadline in list(live.values()) \
                    + list(draining.values()):
                if process.is_alive():
                    process.terminate()
                process.join(timeout=1.0)
            out_queue.close()

        return self._collect(outcomes, registry, instrument)

    @staticmethod
    def _drain(out_queue, outcomes):
        """Pull every currently available worker message off the queue."""
        while True:
            try:
                message = out_queue.get(timeout=0.02)
            except queue_module.Empty:
                return
            index, status, value, payload, elapsed = message
            if status == "ok":
                outcomes[index] = ("ok", value, payload, elapsed)
            else:
                outcomes[index] = ("error",
                                   TaskFailure(index, "error", value),
                                   payload, elapsed)

    @staticmethod
    def _collect(outcomes, registry, instrument):
        """Per-round results + deterministic telemetry merge at join.

        Worker registries are merged (and their buffered trace events
        re-emitted, tagged with the worker's chunk index) in chunk order
        regardless of completion order, so sink output and merged
        metrics are reproducible.
        """
        enabled = registry.enabled
        values = {}
        for index in sorted(outcomes):
            outcome = outcomes[index]
            if isinstance(outcome, TaskFailure):      # timeout / crashed
                if enabled:
                    registry.counter("parallel.tasks").inc()
                    registry.counter("parallel.failures").inc()
                values[index] = outcome
                continue
            status, value, payload, elapsed = outcome
            if enabled:
                registry.counter("parallel.tasks").inc()
                registry.histogram("parallel.worker_seconds").observe(
                    elapsed)
                if status != "ok":
                    registry.counter("parallel.failures").inc()
            if instrument and payload is not None:
                snapshot, events = payload
                registry.merge(snapshot)
                for event in events:
                    event.setdefault("worker", index)
                    registry.emit(event)
            values[index] = value
        return values


def parallel_map(fn, tasks, workers=None, timeout=None, on_error="raise",
                 retry=None):
    """One-shot convenience wrapper around :class:`ParallelMap`."""
    return ParallelMap(workers=workers, timeout=timeout).map(
        fn, tasks, on_error=on_error, retry=retry)
