"""Chunked process-pool execution engine for the library's fan-out paths.

The paper frames all three computing models as *accelerators* beside a
classical host (Fig. 1/2); every hot workload in this reproduction --
DMM time-to-solution ensembles, quantum shot loops, oscillator
image-patch scoring -- is a bag of independent kernels.  This module is
the host-side scheduler for those bags:

* :func:`chunk_sizes` / :func:`chunk_list` -- deterministic chunking
  that depends only on the task count and the chunk size, **never** on
  the worker count, so results are bit-identical whether a run uses one
  worker or eight,
* :class:`ParallelMap` -- maps a module-level function over chunk
  payloads on a bounded set of worker processes, with ordered result
  collection, per-task timeouts, crash recovery (a dead worker marks
  its chunk failed and the run continues), per-chunk retries
  (:class:`~repro.core.resilience.RetryPolicy`), result validation,
  checkpoint/resume (:class:`~repro.core.resilience.Checkpointer`), and
  content-addressed chunk reuse (:class:`~repro.core.cache.CacheSpec` --
  a cached chunk skips dispatch and replays bit-identically),
* :class:`WorkerPool` -- the persistent worker processes behind
  :class:`ParallelMap`: spawned once per (start method), reused across
  consecutive ``map()`` calls so the fork/import cost is amortized over
  a whole sweep instead of paid per call, grown on demand, respawned
  individually after a crash or timeout kill, and shut down at
  interpreter exit,
* :class:`TaskFailure` -- the ordered-result placeholder for a chunk
  that raised, timed out, failed validation, or whose worker died.

Where chunks *execute* is a pluggable interface
(:mod:`repro.core.backends`): ``backend="serial"`` runs them inline,
``"pool"`` on the persistent local worker pool, ``"remote"`` on
``repro worker-host`` agents over TCP -- with identical results, cache
keys, and merged telemetry by construction (``tests/backends/`` holds
the library to that; see ``docs/backends.md``).  ``backend=None``
keeps the historical automatic serial/pool choice.

Large ndarrays inside chunk payloads ride in POSIX shared memory
(:mod:`repro.core.shm`) instead of pickling through the dispatch queue;
the worker copies the array out of the segment, so the semantics are
exactly those of pickling at a fraction of the cost.

``workers="auto"`` (accepted everywhere a worker count is: the
``workers=`` arguments, ``REPRO_WORKERS``, the CLI's ``--workers``)
sizes the pool from :func:`os.cpu_count` and stays serial when the
machine has one core or the workload is a single chunk.  Auto mode
always routes through the *chunked* code path, so its results are
bit-identical to any explicit ``--workers N`` run of the same chunked
workload -- the machine decides only where chunks run, never what they
compute.

Seeding contract
----------------
Callers split their workload into chunks first, then spawn one child
generator per chunk with :func:`repro.core.rngs.spawn_rngs` and ship the
generator inside the chunk payload.  Because both the chunking and the
spawn are functions of ``(task count, chunk size, root seed)`` alone,
the worker count only decides *where* a chunk runs, never *what* it
computes -- the determinism suite (``tests/core/test_parallel.py``)
holds the library to that.

Retries preserve the contract: a re-dispatched chunk re-runs its
*original* payload (workers never mutate the parent's copy; the serial
path deep-copies per attempt when retries or fault injection are
active), so a chunk that eventually succeeds returns exactly what a
fault-free run returns.  See :mod:`repro.core.resilience` and
``docs/resilience.md``.

Telemetry
---------
When the active registry is live at :meth:`ParallelMap.map` time, each
worker process records into its own fresh
:class:`~repro.core.telemetry.MetricsRegistry` (never into inherited
parent sinks), and the worker's snapshot and buffered trace events are
shipped back with its result and merged into the parent registry at
join.  The engine itself records ``parallel.tasks`` (one per chunk
*execution*, so retried chunks count each attempt),
``parallel.failures``, ``parallel.retries``, ``parallel.giveups``, and
the ``parallel.worker_seconds`` histogram, and wraps each map in a
``parallel.map`` span.

Serial fallback
---------------
``workers=1`` (the default, also reachable through the ``REPRO_WORKERS``
environment variable), a single-task map, or a platform without a usable
multiprocessing start method all run the same chunk functions inline in
the parent process -- same results, no subprocesses, no pickling.  One
exception: a ``timeout=`` forces the pool path even at ``workers=1``,
because only a subprocess can be killed past its deadline -- a wedged
inline call would hang the caller (fatal for a long-running service).
Only a platform with *no* usable start method still runs timed maps
inline; the engine says so once per process with a ``RuntimeWarning``
plus a ``parallel.timeout_unenforced`` counter/event instead of
silently ignoring the budget.

Thread safety
-------------
A :class:`WorkerPool` serializes its rounds with a lock, so concurrent
``map()`` calls from multiple threads (the ``repro serve`` dispatcher)
queue up instead of interleaving dispatches and stealing each other's
results.  ``shutdown()`` during an active round aborts that round
cleanly: pending chunks come back as ``TaskFailure(reason="crashed")``,
in-flight shared-memory segments are released, and no workers are
respawned into the closed pool.
"""

import atexit
import copy
import multiprocessing
import os
import queue as queue_module
import threading
import time
import warnings

from . import backends, resilience, shm, telemetry, tracing
from .exceptions import ParallelError
from .tracing import ListSink

#: Default number of chunks a workload is split into when the caller
#: gives no explicit chunk size.  A constant (rather than anything
#: derived from the worker count) so chunking -- and therefore per-chunk
#: RNG spawning -- is identical across worker counts.
DEFAULT_CHUNKS = 8

#: Environment variable consulted when ``workers=None``.
WORKERS_ENV = "REPRO_WORKERS"

#: The ``workers`` sentinel for machine-sized pools.
AUTO = "auto"

#: Auto mode refuses to fan a workload of fewer chunks than this out to
#: processes -- a single chunk gains nothing from a pool.
AUTO_MIN_CHUNKS = 2

#: Grace period (seconds) for a result to drain out of a worker that
#: already exited; after this the chunk is declared crashed.
_DRAIN_GRACE_S = 0.5


def _cpu_count():
    """Visible CPU count (module-level so tests can patch it)."""
    return os.cpu_count() or 1


def resolve_workers(workers=None):
    """Coerce a ``workers`` argument into a positive int or ``"auto"``.

    ``None`` consults the ``REPRO_WORKERS`` environment variable and
    falls back to 1 (serial) -- so library call sites stay serial unless
    a caller, the CLI's ``--workers``, or the environment opts in.
    ``"auto"`` passes through as-is: the pool size is picked per
    workload (see :data:`AUTO` and :meth:`ParallelMap.map`).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        workers = raw
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == AUTO:
            return AUTO
        try:
            workers = int(text)
        except ValueError:
            raise ParallelError(
                "workers must be an integer or 'auto', got %r" % workers)
    workers = int(workers)
    if workers < 1:
        raise ParallelError("workers must be >= 1, got %d" % workers)
    return workers


def wants_fanout(workers):
    """True when this ``workers`` request should take a fan-out branch.

    ``"auto"`` always fans out through the chunked path (its results
    must not depend on the machine's core count; the pool may still
    execute serially), explicit counts fan out above 1.
    """
    workers = resolve_workers(workers)
    return workers == AUTO or workers > 1


def default_chunk_size(total):
    """Chunk size splitting ``total`` tasks into ~:data:`DEFAULT_CHUNKS`."""
    if total < 0:
        raise ParallelError("total must be non-negative, got %d" % total)
    return max(1, -(-total // DEFAULT_CHUNKS))


def chunk_sizes(total, chunk_size=None):
    """Deterministic chunk sizes covering ``total`` work units.

    Every chunk has ``chunk_size`` units except a smaller trailing
    remainder.  Depends only on ``(total, chunk_size)`` -- never on the
    worker count (see the module's seeding contract).
    """
    if total < 0:
        raise ParallelError("total must be non-negative, got %d" % total)
    if total == 0:
        return []
    size = default_chunk_size(total) if chunk_size is None else int(chunk_size)
    if size < 1:
        raise ParallelError("chunk_size must be >= 1, got %d" % size)
    full, remainder = divmod(total, size)
    sizes = [size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


def chunk_list(items, chunk_size=None):
    """Split ``items`` into the :func:`chunk_sizes` chunks, in order."""
    items = list(items)
    chunks = []
    start = 0
    for size in chunk_sizes(len(items), chunk_size):
        chunks.append(items[start:start + size])
        start += size
    return chunks


class TaskFailure:
    """Ordered-result placeholder for a chunk that did not produce a value.

    Filter failures out of a mixed result list with
    ``[r for r in results if not isinstance(r, TaskFailure)]``.
    (``TaskFailure`` is deliberately *truthy* like any other object: an
    earlier falsy ``__bool__`` made ``if r`` filtering silently drop
    legitimate falsy results such as ``0`` or ``[]``.)

    Attributes
    ----------
    index : int
        The chunk's position in the task list (results stay ordered).
    reason : str
        ``"error"`` (the function raised), ``"timeout"`` (the per-task
        deadline passed and the worker was terminated), ``"crashed"``
        (the worker process died without reporting a result), or
        ``"invalid"`` (the result failed the caller's ``validate``
        hook).
    message : str
        Human-readable detail (exception repr, exit code, ...).
    """

    __slots__ = ("index", "reason", "message")

    def __init__(self, index, reason, message=""):
        self.index = int(index)
        self.reason = str(reason)
        self.message = str(message)

    def __repr__(self):
        return "TaskFailure(index=%d, reason=%s, message=%r)" % (
            self.index, self.reason, self.message)


def _pick_context(start_method=None):
    """A usable multiprocessing context, or None (forces serial).

    Prefers ``fork`` (cheap, inherits the parent's loaded state); falls
    back to ``spawn`` elsewhere; returns None when the platform offers
    neither -- :class:`ParallelMap` then degrades gracefully to serial.
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            return None
        return multiprocessing.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


_timeout_warning_emitted = False


def _reset_timeout_warning():
    """Re-arm the one-time serial-timeout warning (tests only)."""
    global _timeout_warning_emitted
    _timeout_warning_emitted = False


def _warn_timeout_unenforced(timeout, registry):
    """Flag a ``timeout=`` that the serial path cannot enforce.

    The telemetry counter/event fire on every affected ``map()`` call;
    the ``RuntimeWarning`` fires once per process so a looped serial
    caller is not spammed.
    """
    global _timeout_warning_emitted
    if registry.enabled:
        registry.counter("parallel.timeout_unenforced").inc()
        telemetry.event("parallel.timeout_unenforced", timeout=timeout)
    if not _timeout_warning_emitted:
        _timeout_warning_emitted = True
        warnings.warn(
            "ParallelMap(timeout=%g) is not enforceable without a usable "
            "multiprocessing start method; the task(s) will run inline "
            "to completion" % timeout,
            RuntimeWarning, stacklevel=3)


def _pool_worker_main(in_queue, out_queue):
    """Persistent worker loop: run dispatched chunks until told to stop.

    Each message is one chunk job; ``None`` is the shutdown sentinel.
    For every chunk the worker replaces the inherited registry: a forked
    child must never write into the parent's sinks (a JSONL sink would
    interleave), so it records into a fresh registry (with a buffering
    sink) when telemetry is on, or into the null registry when it is
    off.  Results carry the dispatching job id so the parent can discard
    stale messages from a round it already abandoned.
    """
    while True:
        message = in_queue.get()
        if message is None:
            return
        job, fn, task, index, attempt, plan, instrument, trace = message
        start = time.perf_counter()
        sink = None
        try:
            task = shm.resolve_payload(task)
            if instrument:
                registry = telemetry.MetricsRegistry()
                sink = registry.add_sink(ListSink())
            else:
                registry = telemetry.NULL_REGISTRY
            with telemetry.use_registry(registry), tracing.use_trace(trace):
                # A chunk span only when a request trace is flowing
                # through: plain parallel runs keep their event stream
                # (and merged snapshot) exactly as before.
                chunk_span = telemetry.span(
                    "parallel.chunk", index=index, attempt=attempt) \
                    if trace is not None else tracing.NULL_SPAN
                with chunk_span:
                    value = resilience.run_task(fn, task, index, attempt,
                                                plan)
            elapsed = time.perf_counter() - start
            payload = (registry.snapshot(), sink.events) if instrument \
                else None
            out_queue.put((job, index, "ok", value, payload, elapsed))
        except BaseException as error:  # noqa: BLE001 -- report, not die
            elapsed = time.perf_counter() - start
            detail = "%s: %s" % (type(error).__name__, error)
            payload = (registry.snapshot(), sink.events) if sink is not None \
                else None
            out_queue.put((job, index, "error", detail, payload, elapsed))


class _PoolWorker:
    """One pool slot: a process, its private dispatch queue, task state."""

    __slots__ = ("process", "in_queue", "busy_index", "deadline",
                 "segments")

    def __init__(self, process, in_queue):
        self.process = process
        self.in_queue = in_queue
        self.busy_index = None
        self.deadline = None
        self.segments = []

    @property
    def idle(self):
        return self.busy_index is None

    def release(self):
        """Drop shared-memory segments of the finished/abandoned chunk."""
        shm.release_segments(self.segments)
        self.busy_index = None
        self.deadline = None


class WorkerPool:
    """Persistent worker processes shared by consecutive ``map()`` calls.

    One pool exists per multiprocessing start method
    (:func:`_get_pool`); it grows to the largest worker count any map
    has asked for and never shrinks -- idle workers block on their
    dispatch queues and cost nothing.  A worker that dies (crash, kill
    fault) or is terminated (timeout/hang recovery) is respawned in
    place, so one bad chunk never degrades the pool for the rest of a
    sweep.  Because every chunk payload carries everything the chunk
    needs (function, data, its own spawned RNG), *which* worker slot
    runs it can never change the result.

    Telemetry: ``parallel.pool.spawns`` counts worker processes started
    (first use and growth), ``parallel.pool.reuses`` counts rounds
    served by already-running workers, ``parallel.pool.restarts``
    counts in-place respawns after a kill or crash.
    """

    def __init__(self, context):
        self.context = context
        self.out_queue = context.Queue()
        self.workers = []
        self._job_counter = 0
        self._closed = False
        self._closing = False
        # Serializes rounds: concurrent map() threads take turns on the
        # pool instead of dispatching into the same slots and draining
        # each other's results (which deadlocked and leaked the loser's
        # in-flight shared-memory segments).
        self._round_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def _spawn_slot(self):
        in_queue = self.context.Queue()
        process = self.context.Process(
            target=_pool_worker_main, args=(in_queue, self.out_queue),
            daemon=True)
        process.start()
        telemetry.get_registry().counter("parallel.pool.spawns").inc()
        return _PoolWorker(process, in_queue)

    def ensure_workers(self, count):
        """Grow to ``count`` live workers; respawn any that died idle."""
        for slot, worker in enumerate(self.workers):
            if not worker.process.is_alive():
                worker.release()
                self.workers[slot] = self._spawn_slot()
        while len(self.workers) < count:
            self.workers.append(self._spawn_slot())

    def _restart_slot(self, slot, registry):
        worker = self.workers[slot]
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=1.0)
        worker.release()
        self.workers[slot] = self._spawn_slot()
        if registry.enabled:
            registry.counter("parallel.pool.restarts").inc()
            # Named in tracing.DEFAULT_FLIGHT_TRIGGERS: a FlightRecorder
            # sink dumps its ring when this passes through.
            registry.emit(tracing.point_event("parallel.pool.restart",
                                              {"slot": slot}))

    def shutdown(self):
        """Stop every worker; the pool cannot be used afterwards.

        Safe to call while another thread is mid-round: the flag makes
        the active round abort cleanly (its remaining chunks come back
        as ``TaskFailure(reason="crashed")`` and its segments are
        released), then the teardown below runs once the round lock is
        free -- workers are never respawned into a closed pool and the
        queues are only closed with no round in flight.
        """
        if self._closed:
            return
        self._closing = True
        with self._round_lock:
            if self._closed:  # pragma: no cover -- lost the close race
                return
            self._closed = True
            for worker in self.workers:
                try:
                    worker.in_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
            for worker in self.workers:
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
                worker.release()
                worker.in_queue.close()
            self.workers = []
            self.out_queue.close()

    @property
    def closed(self):
        return self._closed or self._closing

    # -- one retry round ---------------------------------------------------

    def run_round(self, fn, pairs, workers, timeout, registry, attempt,
                  plan):
        """Execute one round of pending chunks on up to ``workers`` slots.

        Returns ``{index: value-or-TaskFailure}``; timeout and crash
        handling matches the old process-per-chunk scheduler, except
        that the affected slot is respawned instead of abandoned.

        Rounds are serialized by the pool's lock: a second thread's
        round waits for the first to finish instead of the two stealing
        each other's dispatch slots and results.
        """
        with self._round_lock:
            if self._closed or self._closing:
                raise ParallelError("worker pool is shut down")
            return self._run_round_locked(fn, pairs, workers, timeout,
                                          registry, attempt, plan)

    def _abort_round(self, active, pending, outcomes):
        """Shutdown arrived mid-round: fail what's left, reclaim segments."""
        message = "worker pool shut down mid-round"
        for worker in active:
            if not worker.idle:
                outcomes.setdefault(
                    worker.busy_index,
                    TaskFailure(worker.busy_index, "crashed", message))
                worker.release()
        for index, _task in pending:
            outcomes.setdefault(index,
                                TaskFailure(index, "crashed", message))

    def _run_round_locked(self, fn, pairs, workers, timeout, registry,
                          attempt, plan):
        self.ensure_workers(workers)
        instrument = registry.enabled
        trace = tracing.current_trace_id()
        self._job_counter += 1
        job = self._job_counter
        pending = list(pairs)
        draining = {}    # index -> drain deadline
        outcomes = {}    # index -> ("ok"|"error", ...) | TaskFailure
        total = len(pending)
        active = self.workers[:workers]

        try:
            while len(outcomes) < total:
                if self._closing:
                    self._abort_round(active, pending, outcomes)
                    break
                for worker in active:
                    if worker.idle and pending:
                        index, task = pending.pop(0)
                        payload = shm.share_payload(task, worker.segments)
                        worker.in_queue.put(
                            (job, fn, payload, index, attempt, plan,
                             instrument, trace))
                        worker.busy_index = index
                        worker.deadline = None if timeout is None \
                            else time.monotonic() + timeout

                self._drain(job, outcomes)
                now = time.monotonic()

                for slot, worker in enumerate(active):
                    if worker.idle:
                        continue
                    index = worker.busy_index
                    if index in outcomes:
                        worker.release()
                    elif worker.deadline is not None \
                            and now > worker.deadline:
                        outcomes[index] = TaskFailure(
                            index, "timeout",
                            "exceeded %.3gs" % timeout)
                        self._restart_slot(slot, registry)
                        active[slot] = self.workers[slot]
                    elif not worker.process.is_alive():
                        # Exited without a visible result: give the
                        # queue feeder a moment before declaring a
                        # crash, then respawn the slot either way.
                        draining[index] = (now + _DRAIN_GRACE_S,
                                           worker.process.exitcode)
                        self._restart_slot(slot, registry)
                        active[slot] = self.workers[slot]

                for index in list(draining):
                    drain_deadline, exitcode = draining[index]
                    if index in outcomes:
                        del draining[index]
                    elif time.monotonic() > drain_deadline:
                        outcomes[index] = TaskFailure(
                            index, "crashed",
                            "worker exited with code %r without a result"
                            % exitcode)
                        del draining[index]

        finally:
            for worker in active:
                if not worker.idle:
                    if self._closing:
                        # Shutdown in progress: reclaim segments only;
                        # never respawn into a closing pool.
                        worker.release()
                        continue
                    # Abandoned mid-round (exception in the parent):
                    # the slot's task is unrecoverable, reset it.
                    slot = self.workers.index(worker)
                    self._restart_slot(slot, registry)
        return outcomes

    def _drain(self, job, outcomes):
        """Pull worker messages: block briefly for one, then sweep the rest.

        Only the first ``get`` waits (so the parent parks until a result
        or the liveness-check interval elapses); everything already
        queued behind it is taken without blocking.  Returning the
        moment the queue is dry keeps freed workers idle for
        microseconds, not a full poll interval -- the difference between
        pool dispatch amortizing and losing to serial on small chunks.
        """
        block = True
        while True:
            try:
                if block:
                    message = self.out_queue.get(timeout=0.02)
                else:
                    message = self.out_queue.get_nowait()
            except queue_module.Empty:
                return
            block = False
            msg_job, index, status, value, payload, elapsed = message
            if msg_job != job or index in outcomes:
                continue    # stale: a round we already gave up on
            if status == "ok":
                outcomes[index] = ("ok", value, payload, elapsed)
            else:
                outcomes[index] = ("error",
                                   TaskFailure(index, "error", value),
                                   payload, elapsed)


#: Live pools, one per multiprocessing start method.
_POOLS = {}
_POOLS_LOCK = threading.Lock()


def _get_pool(context, registry):
    """The persistent pool for ``context``'s start method (created once).

    Creation is locked so concurrent first maps from multiple threads
    share one pool instead of racing two into existence (the loser's
    workers would leak).
    """
    key = context.get_start_method()
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and not pool.closed:
            if registry.enabled:
                registry.counter("parallel.pool.reuses").inc()
            return pool
        pool = WorkerPool(context)
        _POOLS[key] = pool
        return pool


def shutdown_pools():
    """Stop every persistent pool and warm remote backend.

    The atexit hook; also callable from tests.  Closing remote
    backends here keeps the lifecycle symmetric: ``shutdown_pools()``
    returns the execution layer to a cold state whatever backend a map
    used, and the next map reconnects/respawns on demand.
    """
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()
    backends.shutdown_backends()


atexit.register(shutdown_pools)


class ParallelMap:
    """Map a function over chunk payloads on a bounded worker pool.

    Parameters
    ----------
    workers : int, ``"auto"``, or None
        Maximum concurrent worker processes.  ``None`` consults
        ``REPRO_WORKERS`` (default 1 == serial inline execution);
        ``"auto"`` sizes the pool from the machine's core count per
        ``map()`` call and stays serial for one-chunk workloads or
        single-core hosts (the choice is recorded in the
        ``parallel.auto.*`` counters and never changes results).
    timeout : float or None
        Per-task wall-clock budget in seconds.  A worker past its
        deadline is terminated and its chunk marked failed
        (``reason="timeout"``).  Setting a timeout routes the map
        through the worker pool even at ``workers=1`` so the budget is
        always enforced; only a platform with no usable multiprocessing
        start method still runs inline, and there the engine warns once
        (``parallel.timeout_unenforced``) instead of silently dropping
        the budget.
    start_method : str or None
        Force a multiprocessing start method (mostly for tests); the
        default prefers ``fork`` and degrades to serial when the
        platform has no usable method.
    backend : str, ExecutionBackend, or None
        Where chunks execute: ``"serial"`` (inline), ``"pool"`` (the
        persistent local worker pool), ``"remote"`` (worker-host agents
        over TCP; needs ``hosts=``), or a ready
        :class:`~repro.core.backends.base.ExecutionBackend` instance.
        ``None`` (the default) consults the ambient
        :func:`repro.core.backends.use_backend` scope and the
        ``REPRO_BACKEND`` environment variable, then falls back to the
        automatic serial/pool choice -- so existing call sites behave
        exactly as before.  The backend decides only *where* chunks
        run; chunking, RNG spawning, cache keys, and checkpoints are
        identical across backends.
    hosts : str, iterable, or None
        Worker hosts for ``backend="remote"``: ``"host:port"`` or
        ``"host:port:capacity"`` entries (comma-separated string or a
        list).  ``None`` falls back to the ambient scope and
        ``REPRO_HOSTS``.

    Notes
    -----
    ``fn`` must be a module-level callable and tasks/results must be
    picklable (both are inherited for free under ``fork``, but the
    contract keeps callers portable to ``spawn`` platforms and remote
    hosts).
    """

    def __init__(self, workers=None, timeout=None, start_method=None,
                 backend=None, hosts=None):
        self.workers = resolve_workers(workers)
        if timeout is not None and timeout <= 0:
            raise ParallelError("timeout must be positive, got %r" % timeout)
        self.timeout = timeout
        self.start_method = start_method
        if backend is not None and not isinstance(
                backend, (str, backends.ExecutionBackend)):
            raise ParallelError(
                "backend must be one of %s or an ExecutionBackend, got %r"
                % (", ".join(backends.BACKEND_NAMES), backend))
        if isinstance(backend, str) \
                and backend.strip().lower() not in backends.BACKEND_NAMES:
            raise ParallelError(
                "unknown backend %r (expected one of %s)"
                % (backend, ", ".join(backends.BACKEND_NAMES)))
        self.backend = backend
        self.hosts = hosts

    def map(self, fn, tasks, on_error="raise", retry=None, validate=None,
            checkpoint=None, cache=None):
        """Run ``fn`` over ``tasks``; return results in task order.

        Parameters
        ----------
        on_error : str
            ``"raise"`` re-raises the first *permanent* failure as a
            :class:`ParallelError` (after every task has been given the
            chance to finish and retry); ``"return"`` leaves a
            :class:`TaskFailure` in the failed slots instead.
        retry : None, int, or RetryPolicy
            Per-chunk retry budget
            (:func:`repro.core.resilience.resolve_retry`).  A failed
            chunk whose reason the policy retries is re-dispatched with
            its original payload -- results stay bit-identical to a
            fault-free run -- after the policy's deterministic backoff
            delay.  Failures that exhaust the budget (or are not
            retryable) count into ``parallel.giveups``.
        validate : callable, optional
            Called on each successful result; returning falsy converts
            the result into ``TaskFailure(reason="invalid")`` --
            retryable -- so silently corrupted output (NaNs from a sick
            accelerator) is caught instead of propagated.
        checkpoint : Checkpointer, optional
            Chunk results are recorded as they complete
            (:meth:`~repro.core.resilience.Checkpointer.record`) and
            chunks already completed in a resumed checkpoint are
            skipped -- their recorded results fill the output slots
            without re-execution.
        cache : CacheSpec, optional
            Content-addressed chunk reuse
            (:class:`~repro.core.cache.CacheSpec`).  Before dispatch,
            each still-pending chunk index is looked up under the
            workload fingerprint: hits fill their output slots (and the
            checkpoint, when one is active) without executing; every
            freshly computed, validated chunk value is stored for the
            next run.  Failures are never cached.  The checkpoint is
            consulted first -- a resumed run trusts its own recorded
            results over the shared cache.
        """
        if on_error not in ("raise", "return"):
            raise ParallelError(
                "on_error must be 'raise' or 'return', got %r" % on_error)
        tasks = list(tasks)
        if not tasks:
            return []
        retry = resilience.resolve_retry(retry)
        plan = resilience.active_fault_plan()
        total = len(tasks)
        registry = telemetry.get_registry()
        outcomes = {}
        if checkpoint is not None:
            for index, value in checkpoint.completed().items():
                if 0 <= index < total:
                    outcomes[index] = value
        if cache is not None:
            for index in range(total):
                if index in outcomes:
                    continue
                hit, value = cache.lookup(index)
                if hit:
                    outcomes[index] = value
                    if checkpoint is not None:
                        checkpoint.record(index, value)
        pending = [(index, task) for index, task in enumerate(tasks)
                   if index not in outcomes]
        if self.workers == AUTO:
            workers = self._auto_workers(total, registry)
        else:
            workers = min(self.workers, total)
        with telemetry.span("parallel.map", tasks=total,
                            workers=workers) as map_span:
            # The backend is chosen once per map and reused for every
            # retry round: a round that shrinks to one pending chunk
            # must NOT fall back to serial, or the timeout (and with it
            # hang recovery) would silently stop being enforced.  For
            # the same reason a timed map routes through the pool even
            # at workers=1 -- only a subprocess can be killed past its
            # deadline; a wedged inline call would hang the caller.
            fanout = workers > 1 \
                or (self.timeout is not None and bool(pending))
            backend = backends.resolve_backend(
                self.backend, hosts=self.hosts,
                start_method=self.start_method, fanout=fanout)
            if backend.name == "serial" and self.timeout is not None \
                    and pending:
                _warn_timeout_unenforced(self.timeout, registry)
            copy_tasks = retry is not None or plan is not None
            attempt = 1
            while pending:
                if registry.enabled:
                    registry.counter(
                        "backend.chunks",
                        labels={"backend": backend.name}).inc(len(pending))
                round_values = backend.run_round(
                    fn, pending, workers, self.timeout, registry,
                    attempt, plan, copy_tasks)
                retry_pairs = []
                for index, task in pending:
                    value = round_values[index]
                    if validate is not None \
                            and not isinstance(value, TaskFailure) \
                            and not validate(value):
                        value = TaskFailure(
                            index, "invalid",
                            "validate() rejected the chunk result")
                        if registry.enabled:
                            registry.counter("parallel.failures").inc()
                    if isinstance(value, TaskFailure):
                        if retry is not None \
                                and attempt < retry.max_attempts \
                                and retry.retries(value.reason):
                            retry_pairs.append((index, task))
                            if registry.enabled:
                                registry.counter("parallel.retries").inc()
                            continue
                        if retry is not None and registry.enabled:
                            registry.counter("parallel.giveups").inc()
                        outcomes[index] = value
                    else:
                        outcomes[index] = value
                        if checkpoint is not None:
                            checkpoint.record(index, value)
                        if cache is not None:
                            cache.store(value, index)
                if retry_pairs:
                    delay = max(retry.delay(index, attempt)
                                for index, _task in retry_pairs)
                    if delay > 0.0:
                        time.sleep(delay)
                pending = retry_pairs
                attempt += 1
            if checkpoint is not None:
                checkpoint.flush()
            results = [outcomes[index] for index in range(total)]
            failures = [r for r in results if isinstance(r, TaskFailure)]
            if map_span:
                map_span.set_attr("failures", len(failures))
        if failures and on_error == "raise":
            first = failures[0]
            raise ParallelError(
                "%d of %d parallel task(s) failed; first: task %d %s (%s)"
                % (len(failures), total, first.index, first.reason,
                   first.message))
        return results

    # -- serial fallback --------------------------------------------------

    @staticmethod
    def _run_serial(fn, pairs, registry, attempt, plan, copy_tasks):
        """Inline execution: same chunk functions, no subprocesses.

        When retries or fault injection are active the task payload is
        deep-copied per attempt: inline execution would otherwise
        mutate payload state (a chunk's spawned RNG advances in place),
        and a retry must replay the *original* payload to stay
        bit-identical with a fault-free run.  Worker processes get this
        for free -- fork copy-on-write and spawn pickling both leave
        the parent's payload untouched.
        """
        enabled = registry.enabled
        values = {}
        for index, task in pairs:
            start = time.perf_counter()
            payload = copy.deepcopy(task) if copy_tasks else task
            try:
                value = resilience.run_task(fn, payload, index, attempt,
                                            plan, serial=True)
            except Exception as error:  # noqa: BLE001
                value = TaskFailure(index, "error", "%s: %s"
                                    % (type(error).__name__, error))
                if enabled:
                    registry.counter("parallel.failures").inc()
            if enabled:
                registry.counter("parallel.tasks").inc()
                registry.histogram("parallel.worker_seconds").observe(
                    time.perf_counter() - start)
            values[index] = value
        return values

    # -- auto sizing -------------------------------------------------------

    @staticmethod
    def _auto_workers(total, registry):
        """Pool size for ``workers="auto"``: cores, capped by chunks.

        Stays serial (returns 1) on single-core machines and for
        workloads below :data:`AUTO_MIN_CHUNKS` chunks, where process
        dispatch can only add overhead.  The decision never feeds back
        into chunking or seeding, so any choice yields bit-identical
        results; ``parallel.auto.serial`` / ``parallel.auto.parallel``
        record which way it went.
        """
        cpus = _cpu_count()
        workers = min(cpus, total)
        if cpus < 2 or total < AUTO_MIN_CHUNKS:
            workers = 1
        if registry.enabled:
            registry.counter(
                "parallel.auto.serial" if workers == 1
                else "parallel.auto.parallel").inc()
        return workers

    # -- shared round collection ------------------------------------------

    @staticmethod
    def _collect(outcomes, registry, instrument):
        """Per-round results + deterministic telemetry merge at join.

        Worker registries are merged (and their buffered trace events
        re-emitted, tagged with the worker's chunk index) in chunk order
        regardless of completion order, so sink output and merged
        metrics are reproducible.
        """
        enabled = registry.enabled
        values = {}
        for index in sorted(outcomes):
            outcome = outcomes[index]
            if isinstance(outcome, TaskFailure):      # timeout / crashed
                if enabled:
                    registry.counter("parallel.tasks").inc()
                    registry.counter("parallel.failures").inc()
                values[index] = outcome
                continue
            status, value, payload, elapsed = outcome
            if enabled:
                registry.counter("parallel.tasks").inc()
                registry.histogram("parallel.worker_seconds").observe(
                    elapsed)
                if status != "ok":
                    registry.counter("parallel.failures").inc()
            if instrument and payload is not None:
                snapshot, events = payload
                registry.merge(snapshot)
                for event in events:
                    event.setdefault("worker", index)
                    registry.emit(event)
            values[index] = value
        return values


def parallel_map(fn, tasks, workers=None, timeout=None, on_error="raise",
                 retry=None, backend=None, hosts=None):
    """One-shot convenience wrapper around :class:`ParallelMap`."""
    return ParallelMap(workers=workers, timeout=timeout, backend=backend,
                       hosts=hosts).map(
        fn, tasks, on_error=on_error, retry=retry)
