"""Shared substrate: integrators, event/signal analysis, CNF, instances.

The three computing models reproduced from the paper sit on this common
layer.  Nothing here knows about qubits, oscillators, or SOLGs.
"""

from . import (
    cache,
    parallel,
    profiling,
    provenance,
    resilience,
    telemetry,
    tracing,
)
from .cache import CacheSpec, ResultCache, use_cache
from .cnf import Clause, CnfFormula, parse_dimacs
from .parallel import ParallelMap, TaskFailure, parallel_map
from .profiling import Profile, ProfileSink, record_throughput
from .provenance import host_provenance
from .resilience import Checkpointer, FaultPlan, RetryPolicy, use_faults
from .integrators import (
    Trajectory,
    integrate_adaptive,
    integrate_clipped,
    integrate_fixed,
    rk4_step,
)
from .rngs import make_rng, spawn_rngs
from .sat_instances import (
    frustrated_loop_ising,
    ising_energy,
    planted_ksat,
    planted_maxsat,
    random_ksat,
)

__all__ = [
    "cache",
    "CacheSpec",
    "ResultCache",
    "use_cache",
    "parallel",
    "profiling",
    "provenance",
    "Profile",
    "ProfileSink",
    "record_throughput",
    "host_provenance",
    "resilience",
    "telemetry",
    "tracing",
    "ParallelMap",
    "TaskFailure",
    "parallel_map",
    "Checkpointer",
    "FaultPlan",
    "RetryPolicy",
    "use_faults",
    "Clause",
    "CnfFormula",
    "parse_dimacs",
    "Trajectory",
    "integrate_adaptive",
    "integrate_clipped",
    "integrate_fixed",
    "rk4_step",
    "make_rng",
    "spawn_rngs",
    "frustrated_loop_ising",
    "ising_energy",
    "planted_ksat",
    "planted_maxsat",
    "random_ksat",
]
