"""Generators for SAT / MaxSAT / spin-glass benchmark instances.

The DMM experiments of Section IV (and the baselines they are compared
against) need controlled problem families:

* uniform random k-SAT at a chosen clause ratio (the classic hardness dial),
* *planted* k-SAT, guaranteed satisfiable with a hidden assignment, used by
  the scaling study so that "solved" is well-defined at every size,
* weighted partial MaxSAT built from a planted core plus soft preferences,
* frustrated-loop Ising instances in the style of [56] (Sheldon, Traversa,
  Di Ventra) where loops of couplings each carry exactly one frustrated
  bond, so the ground-state energy is known by construction.
"""

import numpy as np

from .cnf import Clause, CnfFormula
from .rngs import make_rng


def random_ksat(num_variables, num_clauses, k=3, rng=None):
    """Uniform random k-SAT: each clause draws k distinct variables, random signs.

    No guarantee of satisfiability; at ratio ~4.27 (k=3) instances straddle
    the SAT/UNSAT phase transition.
    """
    if num_variables < k:
        raise ValueError("need at least k=%d variables, got %d" % (k, num_variables))
    rng = make_rng(rng)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.choice(num_variables, size=k, replace=False) + 1
        signs = rng.integers(0, 2, size=k) * 2 - 1
        clauses.append(Clause(variables * signs))
    return CnfFormula(clauses, num_variables=num_variables)


def planted_ksat(num_variables, num_clauses, k=3, rng=None,
                 return_assignment=False):
    """Random k-SAT with a hidden satisfying ('planted') assignment.

    Clauses are drawn uniformly among those satisfied by the plant.  Used by
    the DMM-vs-WalkSAT scaling benchmark so every instance is solvable and
    time-to-solution is well defined.

    Returns the formula, or ``(formula, plant_dict)`` when
    ``return_assignment`` is True.
    """
    if num_variables < k:
        raise ValueError("need at least k=%d variables, got %d" % (k, num_variables))
    rng = make_rng(rng)
    plant = rng.integers(0, 2, size=num_variables).astype(bool)
    clauses = []
    while len(clauses) < num_clauses:
        variables = rng.choice(num_variables, size=k, replace=False) + 1
        signs = rng.integers(0, 2, size=k) * 2 - 1
        literals = variables * signs
        satisfied = any(
            (lit > 0) == bool(plant[abs(lit) - 1]) for lit in literals
        )
        if satisfied:
            clauses.append(Clause(literals))
    formula = CnfFormula(clauses, num_variables=num_variables)
    if return_assignment:
        plant_dict = {i + 1: bool(plant[i]) for i in range(num_variables)}
        return formula, plant_dict
    return formula


def planted_maxsat(num_variables, num_hard, num_soft, k=3, rng=None,
                   weight_range=(1.0, 10.0)):
    """Weighted partial MaxSAT: a planted hard core plus random soft clauses.

    The hard clauses are planted-satisfiable; soft clauses are uniform
    random (so some conflict with the plant) with weights drawn uniformly
    from ``weight_range``.  Returns ``(formula, plant_dict)``.
    """
    rng = make_rng(rng)
    core, plant = planted_ksat(num_variables, num_hard, k=k, rng=rng,
                               return_assignment=True)
    clauses = list(core.clauses)
    lo, hi = weight_range
    for _ in range(num_soft):
        variables = rng.choice(num_variables, size=k, replace=False) + 1
        signs = rng.integers(0, 2, size=k) * 2 - 1
        weight = float(rng.uniform(lo, hi))
        clauses.append(Clause(variables * signs, weight=weight))
    return CnfFormula(clauses, num_variables=num_variables), plant


def frustrated_loop_ising(num_spins, num_loops, loop_length=6, rng=None):
    """Frustrated-loop spin-glass couplings in the style of [56].

    Each loop visits ``loop_length`` distinct spins in a random cycle.  All
    bonds on the loop are ferromagnetic (J = -1 in the convention
    ``E = sum_ij J_ij s_i s_j``) except one random bond which is
    antiferromagnetic (J = +1), frustrating the loop.  Couplings from
    overlapping loops add.  The planted state (all spins up) achieves
    energy ``sum_loops (loop_length - 2)``... more usefully, the ground
    state energy is known by construction:

    each loop contributes at best ``-(loop_length - 2) + ... `` -- the
    standard result is that a single frustrated loop has ground energy
    ``-(loop_length - 2) - 1 + 0`` obtained by sacrificing exactly one
    bond.  We therefore return the couplings together with the per-loop
    optimal energy bound ``-(loop_length - 2)`` so callers can verify
    solution quality.

    Returns
    -------
    couplings : dict mapping (i, j) with i < j to float J_ij
    ground_energy_bound : float
        Sum over loops of the single-loop ground energy; the true ground
        energy is >= this bound and equals it when loops do not interfere
        destructively.
    """
    if loop_length < 3:
        raise ValueError("loop_length must be >= 3")
    if num_spins < loop_length:
        raise ValueError("need at least loop_length spins")
    rng = make_rng(rng)
    couplings = {}
    for _ in range(num_loops):
        spins = rng.choice(num_spins, size=loop_length, replace=False)
        frustrated_bond = int(rng.integers(0, loop_length))
        for b in range(loop_length):
            i = int(spins[b])
            j = int(spins[(b + 1) % loop_length])
            key = (min(i, j), max(i, j))
            sign = +1.0 if b == frustrated_bond else -1.0
            couplings[key] = couplings.get(key, 0.0) + sign
    # Single loop of length L with one frustrated bond: the best achievable
    # is to satisfy L-1 bonds and violate 1, i.e. energy -(L-1) + 1 = -(L-2).
    ground_energy_bound = -float(num_loops * (loop_length - 2))
    return couplings, ground_energy_bound


def ising_energy(couplings, spins, fields=None):
    """Energy ``E = sum_ij J_ij s_i s_j + sum_i h_i s_i`` for +-1 spins."""
    spins = np.asarray(spins)
    energy = 0.0
    for (i, j), coupling in couplings.items():
        energy += coupling * spins[i] * spins[j]
    if fields is not None:
        energy += float(np.dot(np.asarray(fields), spins))
    return float(energy)
