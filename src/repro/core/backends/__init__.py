"""Pluggable execution backends for :class:`ParallelMap`.

``backend="serial" | "pool" | "remote"`` (or an
:class:`~repro.core.backends.base.ExecutionBackend` instance) selects
*where* chunks run; everything that decides *what* they compute --
chunking, per-chunk RNG spawning, cache keys, checkpoint fingerprints,
the exact-moment telemetry merge -- lives in the scheduler and is
backend-independent by construction (``tests/backends/`` proves the
results bit-identical).

Selection precedence for ``backend=None`` (the default everywhere):

1. the innermost :func:`use_backend` scope (the CLI's ``--backend`` /
   ``--hosts`` flags and ``repro serve`` install one),
2. the ``REPRO_BACKEND`` / ``REPRO_HOSTS`` environment variables,
3. the legacy automatic choice: serial unless the map fans out, then
   the persistent local pool.

Remote backends are cached per host set so consecutive maps (and the
serve dispatcher) reuse warm TCP connections;
:func:`shutdown_backends` -- called from
:func:`repro.core.parallel.shutdown_pools` and at interpreter exit --
closes them.
"""

import atexit
import os
import threading

from ..exceptions import ParallelError
from .base import ExecutionBackend
from .serial import SerialBackend
from .pool import PoolBackend
from .remote import HostSpec, RemoteBackend, parse_hosts

__all__ = [
    "BACKEND_ENV", "HOSTS_ENV", "BACKEND_NAMES",
    "ExecutionBackend", "SerialBackend", "PoolBackend", "RemoteBackend",
    "HostSpec", "parse_hosts", "resolve_backend", "use_backend",
    "active_backend_spec", "shutdown_backends",
]

#: Environment variables consulted when no ``use_backend`` scope is
#: active and no explicit ``backend=`` was given.
BACKEND_ENV = "REPRO_BACKEND"
HOSTS_ENV = "REPRO_HOSTS"

#: The selectable backend names.
BACKEND_NAMES = ("serial", "pool", "remote")

_SERIAL = SerialBackend()

#: Ambient backend override stack (module-global on purpose: the serve
#: dispatcher's worker threads must see the scope the CLI installed).
_OVERRIDES = []
_OVERRIDES_LOCK = threading.Lock()

#: Warm remote backends, keyed by their host-spec strings.
_REMOTES = {}
_REMOTES_LOCK = threading.Lock()


class _BackendScope:
    """Context manager pushed by :func:`use_backend`."""

    __slots__ = ("entry",)

    def __init__(self, backend, hosts):
        self.entry = (backend, hosts)

    def __enter__(self):
        with _OVERRIDES_LOCK:
            _OVERRIDES.append(self.entry)
        return self.entry

    def __exit__(self, *exc):
        with _OVERRIDES_LOCK:
            if self.entry in _OVERRIDES:
                _OVERRIDES.remove(self.entry)
        return False


def use_backend(backend, hosts=None):
    """Scope an ambient backend choice (CLI flags, serve config).

    Inside the scope, every ``ParallelMap(backend=None)`` -- i.e. every
    kernel call site that never heard of backends -- routes its chunks
    through ``backend``.  Explicit ``backend=`` arguments still win.
    ``backend=None`` makes the scope a no-op passthrough.
    """
    if backend is not None and not isinstance(backend, (str,
                                                        ExecutionBackend)):
        raise ParallelError("backend must be one of %s or an "
                            "ExecutionBackend, got %r"
                            % (", ".join(BACKEND_NAMES), backend))
    if isinstance(backend, str):
        name = backend.strip().lower()
        if name not in BACKEND_NAMES:
            raise ParallelError("unknown backend %r (expected one of %s)"
                                % (backend, ", ".join(BACKEND_NAMES)))
        backend = name
    return _BackendScope(backend, hosts)


def active_backend_spec():
    """The ambient ``(backend, hosts)`` pair, or ``(None, None)``.

    The innermost non-``None`` :func:`use_backend` scope wins; with no
    scope active, ``REPRO_BACKEND`` / ``REPRO_HOSTS`` apply.
    """
    with _OVERRIDES_LOCK:
        for backend, hosts in reversed(_OVERRIDES):
            if backend is not None:
                return backend, hosts
    raw = os.environ.get(BACKEND_ENV, "").strip().lower()
    if raw:
        if raw not in BACKEND_NAMES:
            raise ParallelError(
                "%s must be one of %s, got %r"
                % (BACKEND_ENV, ", ".join(BACKEND_NAMES), raw))
        return raw, os.environ.get(HOSTS_ENV) or None
    return None, None


def get_remote_backend(hosts):
    """The warm :class:`RemoteBackend` for this host set (created once)."""
    specs = parse_hosts(hosts)
    key = tuple(sorted("%s:%d:%s" % (s.host, s.port, s.capacity)
                       for s in specs))
    with _REMOTES_LOCK:
        backend = _REMOTES.get(key)
        if backend is None:
            backend = RemoteBackend(specs)
            _REMOTES[key] = backend
        return backend


def resolve_backend(spec=None, hosts=None, start_method=None,
                    fanout=True):
    """The :class:`ExecutionBackend` a map round should run on.

    ``spec`` is an explicit ``backend=`` argument (name, instance, or
    ``None``); ``None`` consults the ambient scope / environment and
    finally the legacy automatic choice, where ``fanout`` (the
    scheduler's workers/timeout decision) picks between serial and the
    local pool exactly as before backends existed.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    name = spec
    if name is None:
        name, ambient_hosts = active_backend_spec()
        if isinstance(name, ExecutionBackend):
            return name
        if hosts is None:
            hosts = ambient_hosts
        if name is None:
            if not fanout:
                return _SERIAL
            context = PoolBackend(start_method).context()
            return PoolBackend(start_method) if context is not None \
                else _SERIAL
    name = str(name).strip().lower()
    if name == "serial":
        return _SERIAL
    if name == "pool":
        backend = PoolBackend(start_method)
        # A platform without a usable start method degrades to serial,
        # same as the legacy scheduler.
        return backend if backend.context() is not None else _SERIAL
    if name == "remote":
        if hosts is None:
            hosts = os.environ.get(HOSTS_ENV) or None
        if not hosts:
            raise ParallelError(
                "backend='remote' needs hosts: pass hosts=/--hosts or "
                "set %s (comma-separated host:port[:capacity])"
                % HOSTS_ENV)
        return get_remote_backend(hosts)
    raise ParallelError("unknown backend %r (expected one of %s)"
                        % (spec, ", ".join(BACKEND_NAMES)))


def shutdown_backends():
    """Close every warm remote backend (atexit; callable from tests)."""
    with _REMOTES_LOCK:
        remotes = list(_REMOTES.values())
        _REMOTES.clear()
    for backend in remotes:
        backend.close()


atexit.register(shutdown_backends)
