"""Local process-pool execution backend (the persistent WorkerPool)."""

from .base import ExecutionBackend


class PoolBackend(ExecutionBackend):
    """One retry round on the persistent local worker pool.

    A behavior-preserving wrapper: dispatch, shared-memory payload
    transport, timeout kills, crash respawns, and the exact-moment
    telemetry merge are all the pre-backend
    :class:`~repro.core.parallel.WorkerPool` code, reached through the
    same :func:`~repro.core.parallel._get_pool` registry (one pool per
    multiprocessing start method, shared across maps and backends).

    ``close()`` is a no-op on purpose: pools are shared process-wide,
    so tearing one down belongs to
    :func:`repro.core.parallel.shutdown_pools`, not to a per-map
    backend handle.
    """

    name = "pool"

    def __init__(self, start_method=None):
        self.start_method = start_method

    def context(self):
        """The multiprocessing context, or None on a pool-less platform."""
        from .. import parallel
        return parallel._pick_context(self.start_method)

    def run_round(self, fn, pairs, workers, timeout, registry, attempt,
                  plan, copy_tasks=False):
        from .. import parallel
        context = self.context()
        if context is None:  # pragma: no cover -- platform-dependent
            # No usable start method: degrade to inline execution the
            # same way the scheduler's legacy path did.
            return parallel.ParallelMap._run_serial(
                fn, pairs, registry, attempt, plan, copy_tasks)
        pool = parallel._get_pool(context, registry)
        outcomes = pool.run_round(fn, pairs, workers, timeout, registry,
                                  attempt, plan)
        return parallel.ParallelMap._collect(outcomes, registry,
                                             registry.enabled)
