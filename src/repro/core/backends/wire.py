"""Length-prefixed TCP framing for the remote execution backend.

One frame is ``MAGIC (4 bytes) + big-endian uint64 length + pickled
payload``.  The payload is a plain tuple whose first element names the
message type; both directions use the same framing:

client -> host agent
    ``("hello", info)``, ``("chunk", job, index, attempt, fn, task,
    plan_spec, instrument, trace)``, ``("ping", token)``, ``("bye",)``

host agent -> client
    ``("welcome", info)``, ``("result", job, index, status, value,
    payload, elapsed)`` -- the exact wire shape of the local
    :class:`~repro.core.parallel.WorkerPool`, so both backends merge
    results through the same code -- and ``("pong", token)``.

Fault plans cross the wire as their :meth:`FaultPlan.spec` dict (plain
data), never as pickled class instances, so a version-skewed host
rejects cleanly instead of unpickling garbage.  ``fn`` is pickled by
reference (module + qualname), which is why worker hosts must import
the same code tree -- see ``docs/backends.md``.

Stdlib only: :mod:`socket`, :mod:`struct`, :mod:`pickle`.
"""

import pickle
import struct

from ..exceptions import ParallelError

#: Frame magic: "repro wire protocol, version 1".
MAGIC = b"RWP1"

#: Protocol version carried in hello/welcome for skew detection.
VERSION = 1

_HEADER = struct.Struct(">4sQ")

#: Refuse frames beyond this size (corrupt header / hostile peer).
MAX_FRAME_BYTES = 1 << 31


def encode_frame(message):
    """One wire frame for ``message`` (header + pickled payload)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, len(payload)) + payload


def send_frame(sock, message):
    """Send one frame on a connected socket; returns bytes written."""
    frame = encode_frame(message)
    sock.sendall(frame)
    return len(frame)


class FrameDecoder:
    """Incremental frame parser for a non-blocking receive loop.

    Feed raw socket bytes in; complete messages come out, partial
    frames stay buffered until their remainder arrives.
    """

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data):
        """Absorb ``data``; return the list of completed messages."""
        self._buffer.extend(data)
        messages = []
        while len(self._buffer) >= _HEADER.size:
            magic, length = _HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise ParallelError(
                    "bad frame magic %r (peer is not a repro worker host "
                    "or the stream is corrupt)" % bytes(magic))
            if length > MAX_FRAME_BYTES:
                raise ParallelError(
                    "frame length %d exceeds limit %d" % (length,
                                                          MAX_FRAME_BYTES))
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            messages.append(pickle.loads(payload))
        return messages


def read_frame(stream):
    """Blocking read of one frame from a file-like byte stream.

    Returns the decoded message, or ``None`` on clean EOF at a frame
    boundary.  EOF inside a frame raises (the peer died mid-message).
    """
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ParallelError("connection closed inside a frame header")
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ParallelError(
            "bad frame magic %r (peer is not a repro worker host or the "
            "stream is corrupt)" % magic)
    if length > MAX_FRAME_BYTES:
        raise ParallelError(
            "frame length %d exceeds limit %d" % (length, MAX_FRAME_BYTES))
    payload = stream.read(length)
    if len(payload) < length:
        raise ParallelError("connection closed inside a frame payload")
    return pickle.loads(payload)
