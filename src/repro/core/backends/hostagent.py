"""The ``repro worker-host`` agent: executes remote chunks over TCP.

One agent process serves one host.  It listens on a TCP port, accepts
connections from :class:`~repro.core.backends.remote.RemoteBackend`
clients, and runs each dispatched chunk through the *same* execution
path as a local pool worker -- :func:`repro.core.resilience.run_task`
under a fresh per-chunk telemetry registry -- then ships the result
back in the pool's wire shape, so the client merges remote telemetry
through the exact same join as local telemetry.

Concurrency model
-----------------
Each chunk runs on its own daemon thread, up to the agent's advertised
capacity (client-side backpressure enforces the cap; a semaphore here
backstops it).  Telemetry-instrumented or traced chunks additionally
serialize on one execution lock: the per-chunk registry swap is
process-global, and two instrumented chunks interleaving would
cross-record.  Heartbeats (``ping``/``pong``) are answered directly on
the connection's reader thread, so a host stays visibly *alive* even
while a chunk is slow -- slowness is the client's per-chunk timeout's
job, not the heartbeat's.

Fault semantics
---------------
A ``kill`` fault in the dispatched :class:`FaultPlan` calls
``os._exit`` inside :func:`run_task` and therefore takes down the whole
agent process -- exactly the "host killed mid-chunk" failure the remote
backend's reroute logic (and ``tests/backends/test_remote_faults.py``)
exercises.  A ``hang`` fault wedges one executor thread (and the
execution lock, when instrumented); the client's timeout reroutes the
chunk and drops the connection.
"""

import multiprocessing
import os
import socket
import threading
import time

from .. import resilience, telemetry, tracing
from ..tracing import ListSink
from . import wire

#: Default concurrent chunk capacity an agent advertises.
DEFAULT_CAPACITY = 2


class _Connection:
    """One accepted client connection: socket, stream, write lock."""

    __slots__ = ("sock", "stream", "lock", "peer")

    def __init__(self, sock, peer):
        self.sock = sock
        self.stream = sock.makefile("rb")
        self.lock = threading.Lock()
        self.peer = peer

    def send(self, message):
        with self.lock:
            wire.send_frame(self.sock, message)

    def close(self):
        for closer in (self.stream.close, self.sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover -- already torn down
                pass


class WorkerHostAgent:
    """A TCP agent executing chunk payloads for remote clients.

    Parameters
    ----------
    host, port : bind address; ``port=0`` picks a free port (read the
        bound address back from :attr:`address` after :meth:`start`).
    capacity : int or None
        Concurrent chunk budget advertised to clients; defaults to the
        visible CPU count (min :data:`DEFAULT_CAPACITY`).
    name : str or None
        Stable identity reported in ``welcome`` (defaults to
        ``host:port``); clients use it for per-host telemetry labels.
    """

    def __init__(self, host="127.0.0.1", port=0, capacity=None, name=None):
        self.host = host
        self.port = int(port)
        if capacity is None:
            capacity = max(DEFAULT_CAPACITY, os.cpu_count() or 1)
        self.capacity = max(1, int(capacity))
        self.name = name
        self._listener = None
        self._threads = []
        self._connections = set()
        self._conn_lock = threading.Lock()
        self._slots = threading.Semaphore(self.capacity)
        self._exec_lock = threading.Lock()
        self._shutdown = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self):
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        return (self.host, self.port)

    def start(self):
        """Bind, listen, and start accepting; returns ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        if self.name is None:
            self.name = "%s:%d" % (self.host, self.port)
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-hostagent-accept",
                                  daemon=True)
        accept.start()
        self._threads.append(accept)
        return self.address

    def serve_forever(self):
        """Block until :meth:`close` (or the process) ends the agent."""
        self._shutdown.wait()

    def close(self):
        """Stop accepting, drop live connections, wake serve_forever."""
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            connection.close()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self):
        while not self._shutdown.is_set():
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock, peer)
            with self._conn_lock:
                self._connections.add(connection)
            reader = threading.Thread(
                target=self._serve_connection, args=(connection,),
                name="repro-hostagent-conn", daemon=True)
            reader.start()

    def _serve_connection(self, connection):
        try:
            while not self._shutdown.is_set():
                message = wire.read_frame(connection.stream)
                if message is None:
                    return
                kind = message[0]
                if kind == "hello":
                    connection.send(("welcome", {
                        "host": self.name,
                        "capacity": self.capacity,
                        "version": wire.VERSION,
                        "pid": os.getpid(),
                    }))
                elif kind == "chunk":
                    runner = threading.Thread(
                        target=self._run_chunk,
                        args=(connection, message),
                        name="repro-hostagent-chunk", daemon=True)
                    runner.start()
                elif kind == "ping":
                    connection.send(("pong", message[1]))
                elif kind == "bye":
                    return
        except Exception:  # noqa: BLE001 -- peer gone or stream corrupt
            return
        finally:
            with self._conn_lock:
                self._connections.discard(connection)
            connection.close()

    # -- chunk execution ---------------------------------------------------

    def _run_chunk(self, connection, message):
        _kind, job, index, attempt, fn, task, plan_spec, instrument, \
            trace = message
        plan = None
        if plan_spec is not None:
            spec, hang_seconds, exit_code = plan_spec
            plan = resilience.FaultPlan.from_spec(
                spec, hang_seconds=hang_seconds, exit_code=exit_code)
        start = time.perf_counter()
        sink = None
        registry = telemetry.NULL_REGISTRY
        with self._slots:
            try:
                if instrument:
                    registry = telemetry.MetricsRegistry()
                    sink = registry.add_sink(ListSink())
                serialize = instrument or trace is not None
                exec_lock = self._exec_lock if serialize else _NULL_LOCK
                with exec_lock:
                    with telemetry.use_registry(registry), \
                            tracing.use_trace(trace):
                        chunk_span = telemetry.span(
                            "parallel.chunk", index=index,
                            attempt=attempt) if trace is not None \
                            else tracing.NULL_SPAN
                        with chunk_span:
                            value = resilience.run_task(fn, task, index,
                                                        attempt, plan)
                elapsed = time.perf_counter() - start
                payload = (registry.snapshot(), sink.events) if instrument \
                    else None
                reply = (job, index, "ok", value, payload, elapsed)
            except BaseException as error:  # noqa: BLE001 -- report
                elapsed = time.perf_counter() - start
                detail = "%s: %s" % (type(error).__name__, error)
                payload = (registry.snapshot(), sink.events) \
                    if sink is not None else None
                reply = (job, index, "error", detail, payload, elapsed)
        try:
            connection.send(("result",) + reply)
        except OSError:  # pragma: no cover -- client already gone
            pass


class _NullLock:
    """No-op context manager standing in for the execution lock."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LOCK = _NullLock()


# -- local agent processes (tests, benchmarks, CI loopback) ---------------

class LocalAgentHandle:
    """A worker-host agent running in a child process on this machine."""

    __slots__ = ("process", "host", "port", "capacity")

    def __init__(self, process, host, port, capacity):
        self.process = process
        self.host = host
        self.port = int(port)
        self.capacity = int(capacity)

    @property
    def spec(self):
        """The ``--hosts`` entry for this agent (``host:port:capacity``)."""
        return "%s:%d:%d" % (self.host, self.port, self.capacity)

    def alive(self):
        return self.process.is_alive()

    def terminate(self, timeout=2.0):
        """Stop the agent process (idempotent)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover -- stubborn child
            self.process.kill()
            self.process.join(timeout=timeout)


def _agent_process_main(ready, capacity, name):
    agent = WorkerHostAgent(port=0, capacity=capacity, name=name)
    host, port = agent.start()
    ready.send((host, port))
    ready.close()
    agent.serve_forever()


def spawn_local_agent(capacity=DEFAULT_CAPACITY, name=None):
    """Start a loopback worker-host agent in a child process.

    Returns a :class:`LocalAgentHandle`; the caller owns termination.
    Used by ``tests/backends/``, the CI loopback job, and
    ``benchmarks/bench_parallel_scaling.py`` -- anywhere a real remote
    host would be overkill but a real process boundary (separate pid,
    real sockets, genuinely killable) is the point.
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    ready, child_ready = context.Pipe(duplex=False)
    process = context.Process(
        target=_agent_process_main, args=(child_ready, capacity, name),
        daemon=True)
    process.start()
    child_ready.close()
    if not ready.poll(10.0):  # pragma: no cover -- spawn wedged
        process.terminate()
        raise RuntimeError("worker-host agent did not come up within 10s")
    host, port = ready.recv()
    ready.close()
    return LocalAgentHandle(process, host, port, capacity)
