"""Remote execution backend: chunks over TCP to worker-host agents.

:class:`RemoteBackend` ships pickled chunk payloads to one or more
``repro worker-host`` agents (:mod:`.hostagent`) over the
length-prefixed protocol in :mod:`.wire`, with:

* **per-host capacity** -- each host advertises (or the ``--hosts``
  spec pins) how many chunks it runs concurrently,
* **round-robin + backpressure scheduling** -- pending chunks go to the
  next live host with a free slot, capped globally by the map's
  ``workers``,
* **retry/reroute** -- a host that drops its connection, misses
  heartbeats, or blows the per-chunk timeout is taken out of rotation
  and its in-flight chunks are re-dispatched to surviving hosts
  (``backend.reroutes``); only when the reroute budget or the host set
  is exhausted does a chunk come back as a :class:`TaskFailure` for the
  engine's normal retry policy,
* **heartbeat-based health** -- links with in-flight chunks are pinged
  when quiet; a host that answers nothing within the grace window is
  declared dead.

Determinism: a reroute re-dispatches the chunk's *original* payload, so
the value a chunk eventually produces is independent of which host ran
it -- the same argument that makes pool slot assignment invisible.  The
only observable difference is the fault-plan coordinate: each remote
*dispatch* of a chunk bumps the attempt used for fault lookup, so an
injected one-shot fault fires once on the first host instead of
re-firing (and e.g. re-killing) on every host the chunk lands on.

Shared memory never crosses this backend: payloads are pickled straight
onto the wire (resolving any shm handles first), so a remote round can
never leak local segments -- ``tests/backends/test_remote_faults.py``
asserts ``shm.active_segment_count() == 0`` after every fault.

Telemetry: ``remote.bytes_out`` / ``remote.bytes_in`` (total and
per-``host`` label), ``remote.chunks{host=...}``,
``remote.connect_failures``, plus the scheduler's ``backend.chunks`` /
``backend.reroutes``.

Like the local pool, rounds are serialized with a lock so concurrent
``map()`` threads (the serve dispatcher) take turns instead of
interleaving dispatches on the same sockets.
"""

import select
import socket
import threading
import time

from .. import shm, tracing
from ..exceptions import ParallelError
from .base import ExecutionBackend
from . import wire

#: Seconds between heartbeat pings to a host with in-flight chunks.
HEARTBEAT_S = 2.0

#: A busy host that has answered nothing within this window is dead.
HEARTBEAT_GRACE_S = 15.0

#: Receive-loop poll interval (matches the local pool's drain cadence).
_POLL_S = 0.02

#: Consecutive all-hosts-unreachable reconnect sweeps before a round
#: gives up and fails its remaining chunks.
_RECONNECT_SWEEPS = 3

_RECV_BYTES = 1 << 16


class HostSpec:
    """One ``--hosts`` entry: ``host:port`` or ``host:port:capacity``."""

    __slots__ = ("host", "port", "capacity")

    def __init__(self, host, port, capacity=None):
        self.host = str(host)
        self.port = int(port)
        if not 0 < self.port < 65536:
            raise ParallelError("host port must be in 1..65535, got %d"
                                % self.port)
        self.capacity = None if capacity is None else int(capacity)
        if self.capacity is not None and self.capacity < 1:
            raise ParallelError("host capacity must be >= 1, got %d"
                                % self.capacity)

    @classmethod
    def parse(cls, text):
        parts = str(text).strip().split(":")
        if len(parts) not in (2, 3) or not parts[0]:
            raise ParallelError(
                "host spec must be 'host:port' or 'host:port:capacity', "
                "got %r" % text)
        try:
            port = int(parts[1])
            capacity = int(parts[2]) if len(parts) == 3 else None
        except ValueError:
            raise ParallelError(
                "host spec must be 'host:port' or 'host:port:capacity', "
                "got %r" % text)
        return cls(parts[0], port, capacity)

    @property
    def label(self):
        """Telemetry label value for this host."""
        return "%s:%d" % (self.host, self.port)

    def __repr__(self):
        return "HostSpec(%r)" % (
            self.label if self.capacity is None
            else "%s:%d" % (self.label, self.capacity))


def parse_hosts(hosts):
    """Normalize a hosts argument into a list of :class:`HostSpec`.

    Accepts a comma-separated string (the CLI / env form), an iterable
    of strings, or an iterable of ready :class:`HostSpec` objects.
    """
    if hosts is None:
        return []
    if isinstance(hosts, str):
        hosts = [part for part in hosts.split(",") if part.strip()]
    specs = []
    for entry in hosts:
        specs.append(entry if isinstance(entry, HostSpec)
                     else HostSpec.parse(entry))
    if not specs:
        raise ParallelError("remote backend needs at least one host "
                            "('host:port' or 'host:port:capacity')")
    return specs


class _HostLink:
    """A live connection to one worker host."""

    __slots__ = ("spec", "sock", "decoder", "capacity", "inflight",
                 "last_seen", "ping_sent")

    def __init__(self, spec, sock, capacity):
        self.spec = spec
        self.sock = sock
        self.decoder = wire.FrameDecoder()
        self.capacity = capacity
        self.inflight = {}   # index -> (dispatch_attempt, deadline)
        self.last_seen = time.monotonic()
        self.ping_sent = None

    def close(self):
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


class RemoteBackend(ExecutionBackend):
    """Execute chunk rounds on remote ``repro worker-host`` agents."""

    name = "remote"

    def __init__(self, hosts, connect_timeout=5.0,
                 heartbeat_s=HEARTBEAT_S,
                 heartbeat_grace_s=HEARTBEAT_GRACE_S,
                 max_reroutes=None):
        self.specs = parse_hosts(hosts)
        self.connect_timeout = float(connect_timeout)
        self.heartbeat_s = float(heartbeat_s)
        self.heartbeat_grace_s = float(heartbeat_grace_s)
        # Reroute budget per chunk *per round*: enough to try every
        # other host once before handing the failure to the engine.
        self.max_reroutes = max(1, len(self.specs) - 1) \
            if max_reroutes is None else int(max_reroutes)
        self._links = {}            # spec -> _HostLink
        self._job = 0
        self._rotation = 0
        self._ever_connected = False
        self._round_lock = threading.Lock()
        # Per-round state (valid only while _round_lock is held).
        self._queue = []            # [(index, dispatch_attempt)]
        self._raw = {}              # index -> pool-wire outcome
        self._reroutes = {}         # index -> reroute count

    # -- connection management ---------------------------------------------

    def _connect(self, spec, registry):
        sock = socket.create_connection((spec.host, spec.port),
                                        timeout=self.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        decoder = wire.FrameDecoder()
        try:
            sock.settimeout(self.connect_timeout)
            sent = wire.send_frame(sock, ("hello",
                                          {"version": wire.VERSION}))
            # Read the handshake through the link's own frame decoder
            # so any bytes the host sends right behind ``welcome`` stay
            # buffered for the round loop instead of being lost.
            welcome = None
            while welcome is None:
                data = sock.recv(_RECV_BYTES)
                if not data:
                    raise ParallelError(
                        "host %s closed during handshake" % spec.label)
                messages = decoder.feed(data)
                if messages:
                    welcome = messages[0]
            if welcome[0] != "welcome":
                raise ParallelError("host %s did not answer hello"
                                    % spec.label)
            info = welcome[1]
            if info.get("version") != wire.VERSION:
                raise ParallelError(
                    "host %s speaks protocol %r, this client speaks %r"
                    % (spec.label, info.get("version"), wire.VERSION))
        except BaseException:
            sock.close()
            raise
        advertised = int(info.get("capacity") or 1)
        capacity = advertised if spec.capacity is None \
            else min(spec.capacity, advertised)
        link = _HostLink(spec, sock, max(1, capacity))
        link.decoder = decoder
        if registry.enabled:
            self._count_bytes(registry, spec, sent, 0)
        return link

    def _ensure_links(self, registry):
        """Connect any spec without a live link; return live links."""
        for spec in self.specs:
            if spec in self._links:
                continue
            try:
                self._links[spec] = self._connect(spec, registry)
                self._ever_connected = True
            except (OSError, ParallelError):
                if registry.enabled:
                    registry.counter("remote.connect_failures").inc()
                    registry.counter(
                        "remote.connect_failures",
                        labels={"host": spec.label}).inc()
        return list(self._links.values())

    def close(self):
        """Close every host connection (reconnects on next use)."""
        for link in list(self._links.values()):
            try:
                wire.send_frame(link.sock, ("bye",))
            except OSError:
                pass
            link.close()
        self._links.clear()

    # -- telemetry helpers --------------------------------------------------

    @staticmethod
    def _count_bytes(registry, spec, out_bytes, in_bytes):
        if out_bytes:
            registry.counter("remote.bytes_out").inc(out_bytes)
            registry.counter("remote.bytes_out",
                             labels={"host": spec.label}).inc(out_bytes)
        if in_bytes:
            registry.counter("remote.bytes_in").inc(in_bytes)
            registry.counter("remote.bytes_in",
                             labels={"host": spec.label}).inc(in_bytes)

    # -- one retry round ----------------------------------------------------

    def run_round(self, fn, pairs, workers, timeout, registry, attempt,
                  plan, copy_tasks=False):
        with self._round_lock:
            return self._run_round_locked(fn, pairs, workers, timeout,
                                          registry, attempt, plan)

    def _run_round_locked(self, fn, pairs, workers, timeout, registry,
                          attempt, plan):
        from .. import parallel
        instrument = registry.enabled
        trace = tracing.current_trace_id()
        # Fault plans cross the wire as plain data (spec string plus
        # its knobs), never as pickled instances.
        plan_spec = None if plan is None \
            else (plan.spec(), plan.hang_seconds, plan.exit_code)
        self._job += 1
        job = self._job
        tasks = {index: task for index, task in pairs}
        # Queue entries are (index, dispatch_attempt); a reroute
        # re-enqueues the same index with a bumped attempt so one-shot
        # fault-plan coordinates fire once per chunk, not once per host
        # the chunk lands on.
        self._queue = [(index, attempt) for index, _task in pairs]
        self._raw = {}
        self._reroutes = {index: 0 for index in tasks}
        total = len(tasks)
        dead_sweeps = 0

        links = self._ensure_links(registry)
        if not links and not self._ever_connected:
            raise ParallelError(
                "remote backend: no reachable worker host among %s"
                % ", ".join(spec.label for spec in self.specs))

        while len(self._raw) < total:
            links = list(self._links.values())
            if not links:
                links = self._ensure_links(registry)
                if not links:
                    dead_sweeps += 1
                    if dead_sweeps >= _RECONNECT_SWEEPS:
                        self._fail_remaining("no reachable remote host")
                        break
                    time.sleep(0.2)
                    continue
            dead_sweeps = 0
            self._dispatch(links, workers, job, fn, tasks, plan_spec,
                           instrument, trace, timeout, registry)
            self._poll(job, registry)
            now = time.monotonic()
            self._check_timeouts(now, timeout, registry)
            self._heartbeat(now, registry)

        raw, self._raw = self._raw, {}
        self._queue = []
        self._reroutes = {}
        return parallel.ParallelMap._collect(raw, registry, instrument)

    # -- round internals ----------------------------------------------------

    def _dispatch(self, links, workers, job, fn, tasks, plan_spec,
                  instrument, trace, timeout, registry):
        inflight_total = sum(len(link.inflight) for link in links
                             if link.spec in self._links)
        progress = True
        while self._queue and progress and inflight_total < workers:
            progress = False
            live = [link for link in links if link.spec in self._links]
            if not live:
                return
            start = self._rotation % len(live)
            for link in live[start:] + live[:start]:
                if not self._queue or inflight_total >= workers:
                    break
                if len(link.inflight) >= link.capacity:
                    continue
                index, dispatch_attempt = self._queue.pop(0)
                message = ("chunk", job, index, dispatch_attempt, fn,
                           shm.resolve_payload(tasks[index]), plan_spec,
                           instrument, trace)
                try:
                    sent = wire.send_frame(link.sock, message)
                except OSError:
                    self._queue.insert(0, (index, dispatch_attempt))
                    self._lose_link(link, registry,
                                    "connection lost on dispatch")
                    break
                deadline = None if timeout is None \
                    else time.monotonic() + timeout
                link.inflight[index] = (dispatch_attempt, deadline)
                inflight_total += 1
                progress = True
                self._rotation += 1
                if registry.enabled:
                    self._count_bytes(registry, link.spec, sent, 0)
                    registry.counter(
                        "remote.chunks",
                        labels={"host": link.spec.label}).inc()

    def _poll(self, job, registry):
        sockets = {link.sock: link for link in self._links.values()}
        if not sockets:
            return
        try:
            readable, _w, _x = select.select(list(sockets), [], [],
                                             _POLL_S)
        except (OSError, ValueError):  # pragma: no cover -- torn down
            readable = list(sockets)
        for sock in readable:
            link = sockets[sock]
            if link.spec not in self._links:
                continue  # lost earlier in this sweep
            try:
                data = sock.recv(_RECV_BYTES)
            except OSError:
                data = b""
            if not data:
                self._lose_link(link, registry,
                                "connection closed by host")
                continue
            if registry.enabled:
                self._count_bytes(registry, link.spec, 0, len(data))
            try:
                messages = link.decoder.feed(data)
            except ParallelError:
                self._lose_link(link, registry,
                                "corrupt frame from host")
                continue
            for message in messages:
                self._handle(link, message, job)

    def _handle(self, link, message, job):
        kind = message[0]
        link.last_seen = time.monotonic()
        if kind == "pong":
            link.ping_sent = None
            return
        if kind != "result":
            return
        _kind, msg_job, index, status, value, payload, elapsed = message
        if msg_job != job or index not in link.inflight:
            return  # stale: a round or dispatch we already gave up on
        del link.inflight[index]
        if index in self._raw:  # pragma: no cover -- defensive
            return
        if status == "ok":
            self._raw[index] = ("ok", value, payload, elapsed)
        else:
            from .. import parallel
            self._raw[index] = (
                "error", parallel.TaskFailure(index, "error", value),
                payload, elapsed)

    def _lose_link(self, link, registry, why, expired=None,
                   expired_reason="timeout"):
        """Drop a host; reroute its in-flight chunks or fail them.

        ``expired`` names the chunk whose own deadline caused the drop
        (it fails with ``expired_reason`` when its reroute budget is
        spent); every other in-flight chunk is collateral and fails as
        ``crashed`` at budget exhaustion.
        """
        from .. import parallel
        inflight = dict(link.inflight)
        link.inflight.clear()
        self._links.pop(link.spec, None)
        link.close()
        if registry.enabled and inflight:
            registry.emit(tracing.point_event(
                "backend.host_lost",
                {"host": link.spec.label, "why": why,
                 "inflight": sorted(inflight)}))
        for index in sorted(inflight):
            if index in self._raw:
                continue
            dispatch_attempt, _deadline = inflight[index]
            if self._reroutes.get(index, 0) < self.max_reroutes:
                self._reroutes[index] = self._reroutes.get(index, 0) + 1
                self._queue.append((index, dispatch_attempt + 1))
                if registry.enabled:
                    registry.counter("backend.reroutes").inc()
                    registry.counter(
                        "backend.reroutes",
                        labels={"backend": self.name}).inc()
            else:
                reason = expired_reason if index == expired else "crashed"
                self._raw[index] = parallel.TaskFailure(
                    index, reason,
                    "remote host %s: %s" % (link.spec.label, why))

    def _check_timeouts(self, now, timeout, registry):
        if timeout is None:
            return
        for link in list(self._links.values()):
            expired = None
            for index, (_attempt, deadline) in link.inflight.items():
                if deadline is not None and now > deadline:
                    expired = index
                    break
            if expired is not None:
                self._lose_link(
                    link, registry,
                    "chunk %d exceeded %.3gs" % (expired, timeout),
                    expired=expired, expired_reason="timeout")

    def _heartbeat(self, now, registry):
        for link in list(self._links.values()):
            if not link.inflight:
                continue
            if now - link.last_seen > self.heartbeat_grace_s:
                self._lose_link(link, registry,
                                "missed heartbeats for %.3gs"
                                % (now - link.last_seen))
                continue
            if link.ping_sent is None \
                    and now - link.last_seen > self.heartbeat_s:
                try:
                    sent = wire.send_frame(link.sock, ("ping", now))
                    link.ping_sent = now
                    if registry.enabled:
                        self._count_bytes(registry, link.spec, sent, 0)
                except OSError:
                    self._lose_link(link, registry,
                                    "connection lost on heartbeat")

    def _fail_remaining(self, why):
        from .. import parallel
        for index, _attempt in self._queue:
            if index not in self._raw:
                self._raw[index] = parallel.TaskFailure(index, "crashed",
                                                        why)
        self._queue = []
