"""The execution-backend interface behind :class:`ParallelMap`.

The paper's host-plus-accelerators picture (Fig. 1) assumes work can be
dispatched to *wherever* the right executor lives.  This package makes
"where chunks run" a swappable interface: the scheduler in
:mod:`repro.core.parallel` decides *what* runs (chunking, per-chunk RNG
spawning, retries, caching, checkpoints -- all backend-independent by
construction), and an :class:`ExecutionBackend` decides *where*.

Three implementations ship:

* :class:`~repro.core.backends.serial.SerialBackend` -- inline in the
  calling process (no subprocesses, no pickling),
* :class:`~repro.core.backends.pool.PoolBackend` -- the persistent
  local :class:`~repro.core.parallel.WorkerPool` (behavior-preserving
  wrapper over the pre-backend scheduler),
* :class:`~repro.core.backends.remote.RemoteBackend` -- pickled chunk
  payloads over a length-prefixed TCP protocol to one or more
  ``repro worker-host`` agent processes.

Because every backend executes the same chunk payloads through
:func:`repro.core.resilience.run_task` and merges worker telemetry
through the same exact-moment join, results -- values, final RNG
states, cache keys, checkpoint fingerprints, merged snapshots -- are
bit-identical across backends.  ``tests/backends/`` holds the library
to that.
"""


class ExecutionBackend:
    """Where one retry round of pending chunks executes.

    Subclasses implement :meth:`run_round`; the scheduler in
    :class:`~repro.core.parallel.ParallelMap` owns everything else
    (chunking, retry/backoff, validation, checkpoint/cache bookkeeping)
    so a backend can never change *what* a chunk computes -- only where.
    """

    #: Short name used for ``backend=`` selection and telemetry labels.
    name = "?"

    def run_round(self, fn, pairs, workers, timeout, registry, attempt,
                  plan, copy_tasks=False):
        """Execute one round of ``(index, task)`` pairs.

        Returns ``{index: value-or-TaskFailure}`` with worker telemetry
        already merged into ``registry`` in chunk order (the
        exact-moment join from
        :meth:`~repro.core.parallel.ParallelMap._collect`).

        Parameters mirror the scheduler's round state: ``workers`` caps
        concurrency, ``timeout`` is the per-chunk wall-clock budget
        (``None`` = unbounded), ``attempt`` is the engine retry round
        (feeds fault-plan coordinates, never results), ``plan`` is the
        active :class:`~repro.core.resilience.FaultPlan`, and
        ``copy_tasks`` asks in-process backends to deep-copy payloads
        per attempt (process-isolated backends get that for free).
        """
        raise NotImplementedError

    def close(self):
        """Release backend resources (sockets, processes).  Idempotent."""

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)
