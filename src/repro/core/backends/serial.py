"""In-process execution backend: chunks run inline, no subprocesses."""

from .base import ExecutionBackend


class SerialBackend(ExecutionBackend):
    """Run every chunk inline in the calling process.

    Same chunk functions, same ordered results, no pickling -- the
    behavior-preserving wrapper over the scheduler's serial path
    (:meth:`~repro.core.parallel.ParallelMap._run_serial`), including
    the per-attempt payload deep copy that keeps retries bit-identical
    when fault injection or retry policies are active.

    A ``timeout=`` cannot be enforced inline (only a subprocess can be
    killed past its deadline); the scheduler warns once per process via
    ``parallel.timeout_unenforced`` when a timed map lands here.
    """

    name = "serial"

    def run_round(self, fn, pairs, workers, timeout, registry, attempt,
                  plan, copy_tasks=False):
        from .. import parallel
        return parallel.ParallelMap._run_serial(
            fn, pairs, registry, attempt, plan, copy_tasks)
