"""Event detection on sampled trajectories.

The oscillator analysis pipeline needs to find threshold crossings in
recorded waveforms: spike times of relaxation oscillators, edges of the
thresholded square waves feeding the XOR readout (Fig. 4), and phase
references for locking detection (Fig. 3).  All detectors here operate on
already-sampled ``(times, values)`` arrays and refine crossing instants by
linear interpolation between samples.
"""

import numpy as np


def rising_crossings(times, values, threshold):
    """Return interpolated times where ``values`` crosses up through ``threshold``.

    A crossing is counted when sample ``i`` is below (or equal to) the
    threshold and sample ``i+1`` is strictly above it.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) != len(values):
        raise ValueError("times/values length mismatch")
    below = values[:-1] <= threshold
    above = values[1:] > threshold
    idx = np.flatnonzero(below & above)
    if len(idx) == 0:
        return np.empty(0)
    v0 = values[idx]
    v1 = values[idx + 1]
    frac = (threshold - v0) / (v1 - v0)
    return times[idx] + frac * (times[idx + 1] - times[idx])


def falling_crossings(times, values, threshold):
    """Return interpolated times where ``values`` crosses down through ``threshold``."""
    return rising_crossings(times, -np.asarray(values, dtype=float), -threshold)


def crossing_periods(crossing_times):
    """Return successive differences between crossing instants.

    For a periodic waveform, rising-edge crossing differences estimate the
    oscillation period cycle by cycle.
    """
    crossing_times = np.asarray(crossing_times, dtype=float)
    if len(crossing_times) < 2:
        return np.empty(0)
    return np.diff(crossing_times)


def steady_period(times, values, threshold, discard_fraction=0.3):
    """Estimate the steady-state period of a waveform from rising crossings.

    The first ``discard_fraction`` of detected cycles is dropped to skip the
    start-up transient; the median of the remaining cycle lengths is
    returned.  Returns ``None`` when fewer than two steady crossings exist
    (i.e. the waveform never settles into oscillation).
    """
    crossings = rising_crossings(times, values, threshold)
    if len(crossings) < 3:
        return None
    start = int(len(crossings) * discard_fraction)
    kept = crossings[start:]
    if len(kept) < 2:
        kept = crossings[-2:]
    periods = np.diff(kept)
    if len(periods) == 0:
        return None
    return float(np.median(periods))


def duty_cycle(times, values, threshold):
    """Fraction of total time the waveform spends above ``threshold``.

    Uses trapezoid-free sample-and-hold accounting: each inter-sample
    interval is attributed to the state of its left sample.  Adequate for
    the densely sampled waveforms produced by the simulators.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) < 2:
        raise ValueError("need at least two samples for a duty cycle")
    dt = np.diff(times)
    high = values[:-1] > threshold
    total = float(np.sum(dt))
    if total <= 0.0:
        raise ValueError("non-increasing time axis")
    return float(np.sum(dt[high]) / total)


def square_wave(values, threshold, low=0.0, high=1.0):
    """Threshold a waveform into a two-level square wave.

    This is the comparator stage of the paper's XOR readout (Fig. 4): the
    analog oscillator node voltage is squared up before the XOR.
    """
    values = np.asarray(values, dtype=float)
    return np.where(values > threshold, high, low)
