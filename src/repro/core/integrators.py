"""Ordinary-differential-equation integrators for the device simulators.

Both physical computing models in the paper are continuous dynamical
systems: the VO2 relaxation oscillators of Section III and the digital
memcomputing machines of Section IV (Eqs. 1-2).  This module provides the
integrators they share:

* :func:`rk4_step` / :func:`integrate_fixed` -- classic fixed-step
  Runge-Kutta 4, used where the dynamics are smooth between events.
* :func:`integrate_adaptive` -- embedded Runge-Kutta-Fehlberg 4(5) with
  step-size control, used for stiff stretches of the DMM dynamics.
* :func:`integrate_clipped` -- forward integration with per-component state
  clipping, matching the paper's requirement that DMM memory variables stay
  in ``x in [0, 1]`` (Eq. 2) while remaining point-dissipative.

All integrators operate on ``float64`` numpy state vectors and a callback
``rhs(t, y) -> dy/dt``.  They record dense trajectories on request so the
analysis modules (locking detection, instanton census) can post-process.
"""

import numpy as np

from .exceptions import IntegrationError


class Trajectory:
    """A recorded solution: times, states, and bookkeeping counters.

    Attributes
    ----------
    times : numpy.ndarray, shape (n,)
        Sample instants, strictly increasing.
    states : numpy.ndarray, shape (n, dim)
        State vector at each instant.
    n_steps : int
        Number of accepted integrator steps taken.
    n_rejected : int
        Number of rejected trial steps (adaptive integrators only).
    terminated_early : bool
        True when a stop condition ended the run before ``t_end``.
    """

    def __init__(self, times, states, n_steps=0, n_rejected=0,
                 terminated_early=False):
        self.times = np.asarray(times, dtype=float)
        self.states = np.asarray(states, dtype=float)
        if self.states.ndim == 1:
            self.states = self.states.reshape(len(self.times), -1)
        if len(self.times) != len(self.states):
            raise ValueError(
                "times and states disagree: %d vs %d"
                % (len(self.times), len(self.states))
            )
        self.n_steps = int(n_steps)
        self.n_rejected = int(n_rejected)
        self.terminated_early = bool(terminated_early)

    @property
    def final_time(self):
        """Last recorded time."""
        return float(self.times[-1])

    @property
    def final_state(self):
        """State vector at the last recorded time (copy)."""
        return self.states[-1].copy()

    def component(self, index):
        """Return the time series of a single state component."""
        return self.states[:, index]

    def resample(self, new_times):
        """Linearly interpolate the trajectory onto ``new_times``."""
        new_times = np.asarray(new_times, dtype=float)
        resampled = np.empty((len(new_times), self.states.shape[1]))
        for j in range(self.states.shape[1]):
            resampled[:, j] = np.interp(new_times, self.times, self.states[:, j])
        return Trajectory(new_times, resampled, n_steps=self.n_steps,
                          n_rejected=self.n_rejected,
                          terminated_early=self.terminated_early)

    def __len__(self):
        return len(self.times)

    def __repr__(self):
        return "Trajectory(n=%d, t=[%g, %g], dim=%d)" % (
            len(self.times), self.times[0], self.times[-1],
            self.states.shape[1],
        )


def _check_finite(y, t):
    if not np.all(np.isfinite(y)):
        raise IntegrationError("non-finite state encountered at t=%g" % t)


def rk4_step(rhs, t, y, dt):
    """Advance one classic fourth-order Runge-Kutta step.

    Parameters
    ----------
    rhs : callable
        Right-hand side ``rhs(t, y) -> dy/dt``.
    t : float
        Current time.
    y : numpy.ndarray
        Current state.
    dt : float
        Step size (must be positive).
    """
    if dt <= 0.0:
        raise ValueError("step size must be positive, got %r" % dt)
    k1 = np.asarray(rhs(t, y))
    k2 = np.asarray(rhs(t + 0.5 * dt, y + 0.5 * dt * k1))
    k3 = np.asarray(rhs(t + 0.5 * dt, y + 0.5 * dt * k2))
    k4 = np.asarray(rhs(t + dt, y + dt * k3))
    return y + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def integrate_fixed(rhs, y0, t_span, dt, record_every=1, stop_condition=None):
    """Integrate with fixed-step RK4 over ``t_span = (t0, t1)``.

    Parameters
    ----------
    rhs : callable
        Right-hand side ``rhs(t, y)``.
    y0 : array-like
        Initial state.
    t_span : tuple of float
        ``(t0, t1)`` with ``t1 > t0``.
    dt : float
        Step size.
    record_every : int
        Record one sample every this many steps (the initial and final
        states are always recorded).
    stop_condition : callable, optional
        ``stop_condition(t, y) -> bool``; when it returns True the
        integration stops after recording that state.

    Returns
    -------
    Trajectory
    """
    t0, t1 = float(t_span[0]), float(t_span[1])
    if t1 <= t0:
        raise ValueError("t_span must satisfy t1 > t0, got %r" % (t_span,))
    if record_every < 1:
        raise ValueError("record_every must be >= 1")
    y = np.array(y0, dtype=float)
    _check_finite(y, t0)
    times = [t0]
    states = [y.copy()]
    t = t0
    n_steps = 0
    terminated = False
    while t < t1 - 1e-15:
        step = min(dt, t1 - t)
        # A diverging trajectory overflows inside the RK stages before
        # the post-step finiteness check can raise; keep the error path
        # warning-clean and let IntegrationError be the single signal.
        with np.errstate(over="ignore", invalid="ignore"):
            y = rk4_step(rhs, t, y, step)
        t += step
        n_steps += 1
        _check_finite(y, t)
        if n_steps % record_every == 0 or t >= t1 - 1e-15:
            times.append(t)
            states.append(y.copy())
        if stop_condition is not None and stop_condition(t, y):
            if times[-1] != t:
                times.append(t)
                states.append(y.copy())
            terminated = True
            break
    return Trajectory(times, states, n_steps=n_steps,
                      terminated_early=terminated)


# Dormand-Prince style RKF45 coefficients (Fehlberg's classic tableau).
_RKF45_A = (
    (),
    (1.0 / 4.0,),
    (3.0 / 32.0, 9.0 / 32.0),
    (1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0),
    (439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0),
    (-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0),
)
_RKF45_C = (0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0)
_RKF45_B5 = (16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0,
             -9.0 / 50.0, 2.0 / 55.0)
_RKF45_B4 = (25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0,
             -1.0 / 5.0, 0.0)


def integrate_adaptive(rhs, y0, t_span, rtol=1e-6, atol=1e-9, dt0=None,
                       dt_min=1e-14, dt_max=None, max_steps=1_000_000,
                       record=True, stop_condition=None):
    """Integrate with embedded RKF4(5) and PI-free step-size control.

    Parameters mirror :func:`integrate_fixed`; additionally ``rtol``/``atol``
    set the per-step error tolerance and ``dt_min`` guards against
    step-size underflow (raising :class:`IntegrationError`).

    Returns
    -------
    Trajectory
    """
    t0, t1 = float(t_span[0]), float(t_span[1])
    if t1 <= t0:
        raise ValueError("t_span must satisfy t1 > t0, got %r" % (t_span,))
    y = np.array(y0, dtype=float)
    _check_finite(y, t0)
    span = t1 - t0
    dt = dt0 if dt0 is not None else span / 100.0
    if dt_max is None:
        dt_max = span / 2.0
    dt = min(dt, dt_max)

    times = [t0]
    states = [y.copy()]
    t = t0
    n_steps = 0
    n_rejected = 0
    terminated = False
    ks = [None] * 6
    while t < t1 - 1e-15:
        if n_steps + n_rejected > max_steps:
            raise IntegrationError(
                "adaptive integrator exceeded %d steps at t=%g" % (max_steps, t)
            )
        dt = min(dt, t1 - t)
        # Stage evaluations on a diverging trial step overflow before
        # the non-finite error estimate can force a rejection; suppress
        # the warnings -- rejection/IntegrationError is the signal.
        with np.errstate(over="ignore", invalid="ignore"):
            for i in range(6):
                yi = y.copy()
                for j, a in enumerate(_RKF45_A[i]):
                    yi += dt * a * ks[j]
                ks[i] = np.asarray(rhs(t + _RKF45_C[i] * dt, yi),
                                   dtype=float)
            y5 = y.copy()
            y4 = y.copy()
            for i in range(6):
                y5 += dt * _RKF45_B5[i] * ks[i]
                y4 += dt * _RKF45_B4[i] * ks[i]
            scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
            err = np.sqrt(np.mean(((y5 - y4) / scale) ** 2))
        if not np.isfinite(err):
            err = 2.0  # force a rejection and step shrink
        if err <= 1.0:
            t += dt
            y = y5
            _check_finite(y, t)
            n_steps += 1
            if record:
                times.append(t)
                states.append(y.copy())
            if stop_condition is not None and stop_condition(t, y):
                terminated = True
                break
        else:
            n_rejected += 1
        # standard step-size update with safety factor and growth clamps
        factor = 0.9 * (1.0 / max(err, 1e-10)) ** 0.2
        dt *= min(5.0, max(0.2, factor))
        dt = min(dt, dt_max)
        if dt < dt_min:
            raise IntegrationError(
                "step size underflow (dt=%g < dt_min=%g) at t=%g"
                % (dt, dt_min, t)
            )
    if not record or times[-1] != t:
        times.append(t)
        states.append(y.copy())
    return Trajectory(times, states, n_steps=n_steps, n_rejected=n_rejected,
                      terminated_early=terminated)


def euler_clip_advance(rhs_batch, states, dt, num_steps, lower=None,
                       upper=None):
    """Advance a ``(B, dim)`` state stack by forward-Euler-with-clipping.

    The batched core of :func:`integrate_clipped`: every row takes the
    same ``y <- clip(y + dt * rhs(y))`` update, ``num_steps`` times.
    ``rhs_batch`` maps a ``(B, dim)`` stack to its ``(B, dim)`` vector
    field; ``lower``/``upper`` broadcast against the stack.  All
    operations are row-elementwise, so advancing a sub-stack of
    trajectories is bit-identical to advancing them inside a larger
    stack -- which is what lets callers compact away finished rows
    (:func:`repro.memcomputing.ensemble.solve_ensemble`) without
    perturbing the survivors.  No finiteness check is performed here;
    batched callers validate whole blocks instead.
    """
    if num_steps < 0:
        raise ValueError("num_steps must be non-negative, got %r"
                         % num_steps)
    states = np.array(states, dtype=float)
    for _ in range(num_steps):
        with np.errstate(over="ignore", invalid="ignore"):
            states = states + dt * np.asarray(rhs_batch(states),
                                              dtype=float)
        if lower is not None or upper is not None:
            np.clip(states, lower, upper, out=states)
    return states


def integrate_clipped(rhs, y0, t_span, dt, lower=None, upper=None,
                      record_every=1, stop_condition=None,
                      max_steps=50_000_000):
    """Forward-Euler integration with per-component clipping.

    The DMM memory variables of Eq. 2 are defined on ``x in [0, 1]``; the
    standard numerical treatment (Traversa & Di Ventra 2017) integrates the
    unconstrained flow and clips the bounded components after each step.
    ``lower``/``upper`` are arrays (or None for unbounded) broadcast against
    the state.

    Forward Euler is intentional here: the clipped flow is non-smooth at
    the box boundary, where higher-order steps gain nothing.
    """
    t0, t1 = float(t_span[0]), float(t_span[1])
    if t1 <= t0:
        raise ValueError("t_span must satisfy t1 > t0, got %r" % (t_span,))
    y = np.array(y0, dtype=float)
    _check_finite(y, t0)
    if lower is not None:
        lower = np.asarray(lower, dtype=float)
    if upper is not None:
        upper = np.asarray(upper, dtype=float)
    times = [t0]
    states = [y.copy()]
    t = t0
    n_steps = 0
    terminated = False
    while t < t1 - 1e-15:
        if n_steps > max_steps:
            raise IntegrationError(
                "clipped integrator exceeded %d steps at t=%g" % (max_steps, t)
            )
        step = min(dt, t1 - t)
        # Same warning-clean error path as integrate_fixed: the post-step
        # finiteness check is the signal, not a RuntimeWarning.
        with np.errstate(over="ignore", invalid="ignore"):
            y = y + step * np.asarray(rhs(t, y), dtype=float)
        if lower is not None or upper is not None:
            np.clip(y, lower, upper, out=y)
        t += step
        n_steps += 1
        _check_finite(y, t)
        if n_steps % record_every == 0 or t >= t1 - 1e-15:
            times.append(t)
            states.append(y.copy())
        if stop_condition is not None and stop_condition(t, y):
            if times[-1] != t:
                times.append(t)
                states.append(y.copy())
            terminated = True
            break
    return Trajectory(times, states, n_steps=n_steps,
                      terminated_early=terminated)
