"""Signal analysis helpers: frequency, phase, locking metrics, spectra.

These are the measurement instruments for the oscillator experiments of
Section III.  Everything takes plain sampled arrays so that both the ODE
simulator output and synthetic test waveforms can be analyzed identically.
"""

import numpy as np

from .events import rising_crossings
from .exceptions import LockingError


def dominant_frequency(times, values, detrend=True):
    """Estimate the dominant frequency of a uniformly resampled waveform.

    The waveform is linearly resampled onto a uniform grid, optionally
    mean-detrended, and the peak bin of the one-sided FFT magnitude
    spectrum (excluding DC) is returned in hertz.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) < 8:
        raise ValueError("need at least 8 samples for a spectrum")
    uniform_t = np.linspace(times[0], times[-1], len(times))
    uniform_v = np.interp(uniform_t, times, values)
    if detrend:
        uniform_v = uniform_v - np.mean(uniform_v)
    spectrum = np.abs(np.fft.rfft(uniform_v))
    freqs = np.fft.rfftfreq(len(uniform_v), d=uniform_t[1] - uniform_t[0])
    if len(spectrum) < 2:
        raise ValueError("spectrum too short")
    peak = 1 + int(np.argmax(spectrum[1:]))
    return float(freqs[peak])


def cycle_frequency(times, values, threshold, discard_fraction=0.3):
    """Frequency from median steady-state rising-edge period.

    More robust than :func:`dominant_frequency` for strongly non-sinusoidal
    relaxation waveforms.  Returns ``None`` when no oscillation is found.
    """
    crossings = rising_crossings(times, values, threshold)
    if len(crossings) < 3:
        return None
    start = int(len(crossings) * discard_fraction)
    kept = crossings[start:]
    if len(kept) < 2:
        kept = crossings[-2:]
    periods = np.diff(kept)
    median_period = float(np.median(periods))
    if median_period <= 0.0:
        return None
    return 1.0 / median_period


def instantaneous_phase(times, values, threshold):
    """Piecewise-linear phase (in cycles) from rising-edge crossings.

    Phase increases by exactly 1.0 per detected cycle; between crossings it
    is linearly interpolated.  Returns ``(sample_times, phase)`` restricted
    to the span covered by crossings.
    """
    crossings = rising_crossings(times, values, threshold)
    if len(crossings) < 2:
        raise LockingError("fewer than two rising crossings; cannot define phase")
    phase_at_crossings = np.arange(len(crossings), dtype=float)
    mask = (times >= crossings[0]) & (times <= crossings[-1])
    sample_times = np.asarray(times, dtype=float)[mask]
    phase = np.interp(sample_times, crossings, phase_at_crossings)
    return sample_times, phase


def phase_difference(times, values_a, values_b, threshold):
    """Mean steady-state phase difference between two waveforms, in cycles.

    Both waveforms are reduced to piecewise-linear phases and compared on
    their common time span; the mean of the last half of the difference
    signal is returned, wrapped into ``[-0.5, 0.5)``.
    """
    t_a, phi_a = instantaneous_phase(times, values_a, threshold)
    t_b, phi_b = instantaneous_phase(times, values_b, threshold)
    lo = max(t_a[0], t_b[0])
    hi = min(t_a[-1], t_b[-1])
    if hi <= lo:
        raise LockingError("waveforms share no common phase-defined span")
    common = np.linspace(lo, hi, 512)
    diff = np.interp(common, t_a, phi_a) - np.interp(common, t_b, phi_b)
    steady = diff[len(diff) // 2:]
    mean = float(np.mean(steady))
    return (mean + 0.5) % 1.0 - 0.5


def is_frequency_locked(times, values_a, values_b, threshold,
                        rel_tol=0.01):
    """True when the two waveforms oscillate at the same steady frequency.

    Frequencies are estimated cycle-wise; the pair is declared locked when
    the relative difference is below ``rel_tol`` (1 % by default, matching
    the sharp plateaus of Fig. 3).
    """
    f_a = cycle_frequency(times, values_a, threshold)
    f_b = cycle_frequency(times, values_b, threshold)
    if f_a is None or f_b is None:
        return False
    return abs(f_a - f_b) <= rel_tol * max(f_a, f_b)


def time_average(times, values):
    """Trapezoidal time average of a sampled waveform."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) < 2:
        raise ValueError("need at least two samples")
    span = times[-1] - times[0]
    if span <= 0.0:
        raise ValueError("non-increasing time axis")
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(values, times) / span)


def power_spectrum(times, values):
    """One-sided magnitude spectrum of a waveform on a uniform grid.

    Returns ``(freqs_hz, magnitude)``; useful for inspecting harmonic
    content of the relaxation waveforms.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    uniform_t = np.linspace(times[0], times[-1], len(times))
    uniform_v = np.interp(uniform_t, times, values)
    uniform_v = uniform_v - np.mean(uniform_v)
    spectrum = np.abs(np.fft.rfft(uniform_v)) / len(uniform_v)
    freqs = np.fft.rfftfreq(len(uniform_v), d=uniform_t[1] - uniform_t[0])
    return freqs, spectrum
