"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one base class to guard any library call.  Sub-hierarchies
mirror the three computing models reproduced from the paper plus the shared
core substrate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CoreError(ReproError):
    """Errors from the shared core substrate (integrators, CNF, signals)."""


class IntegrationError(CoreError):
    """An ODE integration failed (step-size underflow, non-finite state)."""


class FormulaError(CoreError):
    """A Boolean formula is malformed (bad literal, empty clause, parse)."""


class DimacsParseError(FormulaError):
    """DIMACS CNF text could not be parsed."""


class TelemetryError(CoreError):
    """Telemetry misuse (metric kind clash, negative counter increment)."""


class ParallelError(CoreError):
    """The parallel execution engine was misused or a task failed."""


class ResilienceError(CoreError):
    """Retry/checkpoint misuse (bad policy, unreadable or mismatched
    checkpoint, malformed fault spec)."""


class CacheError(CoreError):
    """Result-cache misuse or a corrupted/mismatched cache entry."""


class InjectedFault(CoreError):
    """A deliberately injected failure from a resilience ``FaultPlan``.

    Only ever raised under fault injection (tests, chaos drills); seen
    in production it means a stale ``REPRO_FAULTS`` environment
    variable.
    """


class QuantumError(ReproError):
    """Errors from the quantum accelerator model (Section II)."""


class QubitIndexError(QuantumError):
    """A gate or measurement referenced a qubit outside the register."""


class QasmError(QuantumError):
    """A quantum assembly program failed to parse or validate."""


class CompilationError(QuantumError):
    """A compiler pass could not lower the circuit to the target."""


class MicroArchError(QuantumError):
    """The micro-architecture model rejected an instruction stream."""


class OscillatorError(ReproError):
    """Errors from the coupled-oscillator model (Section III)."""


class DeviceModelError(OscillatorError):
    """A VO2/transistor device model was built with unphysical parameters."""


class LockingError(OscillatorError):
    """Frequency locking analysis was requested on an unlocked system."""


class ReadoutError(OscillatorError):
    """The XOR readout could not produce a stable averaged value."""


class MemcomputingError(ReproError):
    """Errors from the digital memcomputing machine model (Section IV)."""


class SolgError(MemcomputingError):
    """A self-organizing logic gate was configured inconsistently."""


class DmmConvergenceError(MemcomputingError):
    """The DMM dynamics failed to reach a solution within the budget."""


class ServeError(ReproError):
    """Errors from the ``repro serve`` job service."""


class JobValidationError(ServeError):
    """A submitted job's kind or parameters are malformed (HTTP 400)."""


class QueueFullError(ServeError):
    """Admission refused: the service queue is at capacity (HTTP 429)."""


class QuotaError(ServeError):
    """Admission refused: the tenant is at its concurrency quota (429)."""


class SloError(ServeError):
    """An SLO spec is malformed or cannot be evaluated."""
