"""Boolean formulas in conjunctive normal form.

The memcomputing experiments of Section IV operate on combinatorial
optimization problems "first written in Boolean form".  This module is the
shared representation: immutable clauses over integer DIMACS-style
literals, satisfaction checking, and DIMACS parse/emit so instances can be
exchanged with external solvers.

Literal convention: variables are numbered ``1..n``; literal ``+v`` means
variable ``v`` true, ``-v`` means variable ``v`` false (DIMACS).
"""

import io

from .exceptions import DimacsParseError, FormulaError


class Clause:
    """An immutable disjunction of literals.

    Parameters
    ----------
    literals : iterable of int
        Non-zero DIMACS literals.  Duplicates are removed; a clause
        containing both ``v`` and ``-v`` is tautological and flagged.
    weight : float, optional
        Soft-clause weight for MaxSAT (``None`` means hard).
    """

    __slots__ = ("literals", "weight")

    def __init__(self, literals, weight=None):
        # sort by variable, negative literal first on ties, so clause
        # identity is independent of input (and set-iteration) order
        lits = tuple(sorted(set(int(l) for l in literals),
                            key=lambda l: (abs(l), l)))
        if len(lits) == 0:
            raise FormulaError("empty clause is unsatisfiable by construction")
        if any(l == 0 for l in lits):
            raise FormulaError("literal 0 is reserved as the DIMACS terminator")
        self.literals = lits
        self.weight = None if weight is None else float(weight)

    @property
    def is_tautology(self):
        """True when the clause contains a literal and its negation."""
        positive = set(l for l in self.literals if l > 0)
        return any(-l in positive for l in self.literals if l < 0)

    @property
    def variables(self):
        """The set of variable indices appearing in the clause."""
        return frozenset(abs(l) for l in self.literals)

    def is_satisfied_by(self, assignment):
        """Evaluate under ``assignment``: dict/sequence of variable -> bool."""
        for lit in self.literals:
            value = _lookup(assignment, abs(lit))
            if value is None:
                continue
            if value == (lit > 0):
                return True
        return False

    def __len__(self):
        return len(self.literals)

    def __eq__(self, other):
        return isinstance(other, Clause) and self.literals == other.literals \
            and self.weight == other.weight

    def __hash__(self):
        return hash((self.literals, self.weight))

    def __repr__(self):
        if self.weight is None:
            return "Clause(%s)" % (self.literals,)
        return "Clause(%s, weight=%g)" % (self.literals, self.weight)


def _lookup(assignment, var):
    """Fetch variable ``var`` from a dict or 1-indexed sequence assignment."""
    if isinstance(assignment, dict):
        return assignment.get(var)
    index = var - 1
    if index < 0 or index >= len(assignment):
        return None
    return assignment[index]


class CnfFormula:
    """A conjunction of :class:`Clause` objects over variables ``1..n``.

    The formula records ``num_variables`` explicitly so that variables not
    mentioned in any clause still exist (they are free).
    """

    def __init__(self, clauses, num_variables=None):
        self.clauses = [c if isinstance(c, Clause) else Clause(c)
                        for c in clauses]
        max_var = 0
        for clause in self.clauses:
            for lit in clause.literals:
                max_var = max(max_var, abs(lit))
        if num_variables is None:
            num_variables = max_var
        if num_variables < max_var:
            raise FormulaError(
                "num_variables=%d but a clause mentions variable %d"
                % (num_variables, max_var)
            )
        self.num_variables = int(num_variables)

    @property
    def num_clauses(self):
        """Number of clauses."""
        return len(self.clauses)

    @property
    def clause_ratio(self):
        """Clauses-to-variables ratio (the SAT hardness dial alpha)."""
        if self.num_variables == 0:
            return 0.0
        return self.num_clauses / self.num_variables

    @property
    def hard_clauses(self):
        """Clauses with no weight (must be satisfied)."""
        return [c for c in self.clauses if c.weight is None]

    @property
    def soft_clauses(self):
        """Weighted clauses (MaxSAT objective terms)."""
        return [c for c in self.clauses if c.weight is not None]

    def is_satisfied_by(self, assignment):
        """True when every clause is satisfied by ``assignment``."""
        return all(c.is_satisfied_by(assignment) for c in self.clauses)

    def num_satisfied(self, assignment):
        """Count of clauses satisfied by ``assignment``."""
        return sum(1 for c in self.clauses if c.is_satisfied_by(assignment))

    def unsatisfied_clauses(self, assignment):
        """List of clauses not satisfied by ``assignment``."""
        return [c for c in self.clauses if not c.is_satisfied_by(assignment)]

    def weight_satisfied(self, assignment):
        """Total weight of satisfied soft clauses (hard clauses excluded)."""
        return sum(c.weight for c in self.soft_clauses
                   if c.is_satisfied_by(assignment))

    def assignment_from_bools(self, bools):
        """Build a dict assignment from a 0-indexed boolean sequence."""
        if len(bools) != self.num_variables:
            raise FormulaError(
                "assignment length %d != num_variables %d"
                % (len(bools), self.num_variables)
            )
        return {i + 1: bool(b) for i, b in enumerate(bools)}

    def to_dimacs(self):
        """Serialize to DIMACS CNF text (hard clauses only)."""
        out = io.StringIO()
        out.write("c generated by repro.core.cnf\n")
        out.write("p cnf %d %d\n" % (self.num_variables, self.num_clauses))
        for clause in self.clauses:
            out.write(" ".join(str(l) for l in clause.literals))
            out.write(" 0\n")
        return out.getvalue()

    def __repr__(self):
        return "CnfFormula(n=%d, m=%d)" % (self.num_variables, self.num_clauses)


def parse_dimacs(text):
    """Parse DIMACS CNF text into a :class:`CnfFormula`.

    Raises :class:`DimacsParseError` on malformed input.  Comment lines
    (``c ...``) are skipped; ``%`` / ``0`` trailer lines used by some
    generators are tolerated.
    """
    num_vars = None
    declared_clauses = None
    clauses = []
    pending = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsParseError("bad problem line %d: %r" % (line_no, raw))
            try:
                num_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError:
                raise DimacsParseError("bad problem line %d: %r" % (line_no, raw))
            continue
        if num_vars is None:
            raise DimacsParseError("clause before problem line at line %d" % line_no)
        try:
            tokens = [int(tok) for tok in line.split()]
        except ValueError:
            raise DimacsParseError("non-integer token at line %d: %r" % (line_no, raw))
        for token in tokens:
            if token == 0:
                if pending:
                    clauses.append(Clause(pending))
                    pending = []
            else:
                pending.append(token)
    if pending:
        clauses.append(Clause(pending))
    if num_vars is None:
        raise DimacsParseError("missing problem line")
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerate mismatches but only within reason: many published
        # instances have off-by-trailer counts.  A wild mismatch is an error.
        if abs(declared_clauses - len(clauses)) > max(2, declared_clauses // 10):
            raise DimacsParseError(
                "declared %d clauses, parsed %d" % (declared_clauses, len(clauses))
            )
    return CnfFormula(clauses, num_variables=num_vars)
