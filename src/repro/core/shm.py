"""Shared-memory transport for large ndarray chunk payloads.

Dispatching a chunk to a worker process normally pickles the whole
payload through a pipe: for the fan-out paths that ship big arrays (an
oscillator pair block, a DMM state block) that is two full copies plus
queue framing per chunk.  This module parks such arrays in POSIX shared
memory instead and ships a tiny picklable :class:`SharedArrayHandle`;
the worker maps the segment and copies the data out locally.

The transport is deliberately *copy-on-receive*: :meth:`asarray`
returns a private writable copy, exactly what pickling would have
produced, so worker code may mutate its array without corrupting the
parent's payload (the retry contract -- a re-dispatched chunk replays
its original payload -- survives unchanged).  The win over pickling is
that the parent's only cost is one memcpy into the segment, the pipe
carries ~100 bytes, and the worker's copy runs at memory bandwidth.

Lifetime: the parent owns every segment it creates
(:func:`share_payload` collects them) and must close+unlink each one
once the chunk's outcome is recorded (:func:`release_segments`); the
engine does this per chunk, with a final sweep when the round ends.
"""

import threading

import numpy as np

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover -- stdlib module, but stay gated
    _shared_memory = None

# Accounting of segments this process created but has not yet released.
# A long-running service must converge back to zero after every round
# (including kill/timeout/crash recovery); the leak regression tests in
# ``tests/core/test_parallel.py`` and ``tests/serve`` hold it to that.
_TRACK_LOCK = threading.Lock()
_ACTIVE_SEGMENTS = set()


def active_segment_count():
    """Number of shared segments created here and not yet released."""
    with _TRACK_LOCK:
        return len(_ACTIVE_SEGMENTS)


def active_segment_names():
    """Names of the currently unreleased segments (diagnostics/tests)."""
    with _TRACK_LOCK:
        return sorted(_ACTIVE_SEGMENTS)

#: Arrays at or above this many bytes ride in shared memory; smaller
#: ones pickle through the queue as before (the segment setup would
#: cost more than it saves).
SHARE_THRESHOLD_BYTES = 64 * 1024


def available():
    """True when the platform offers POSIX shared memory."""
    return _shared_memory is not None


class SharedArrayHandle:
    """Picklable stand-in for an ndarray parked in a shared segment."""

    __slots__ = ("name", "shape", "dtype_str")

    def __init__(self, name, shape, dtype_str):
        self.name = name
        self.shape = tuple(shape)
        self.dtype_str = dtype_str

    def asarray(self):
        """Materialize a private copy of the array in this process."""
        segment = _shared_memory.SharedMemory(name=self.name)
        try:
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype_str),
                              buffer=segment.buf)
            return view.copy()
        finally:
            del view
            segment.close()

    def __repr__(self):
        return "SharedArrayHandle(%r, shape=%s, dtype=%s)" % (
            self.name, self.shape, self.dtype_str)


def _share_array(array, segments):
    segment = _shared_memory.SharedMemory(create=True, size=array.nbytes)
    segments.append(segment)
    with _TRACK_LOCK:
        _ACTIVE_SEGMENTS.add(segment.name)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    del view
    return SharedArrayHandle(segment.name, array.shape, array.dtype.str)


def _eligible(value, threshold):
    return (isinstance(value, np.ndarray)
            and value.nbytes >= threshold
            and value.dtype.hasobject is False)


def share_payload(task, segments, threshold=SHARE_THRESHOLD_BYTES):
    """Replace large ndarrays inside ``task`` with shared-memory handles.

    Walks plain containers (tuples, lists, dicts) one level at a time;
    arbitrary objects pass through untouched (their internals keep
    pickling as before).  Created segments are appended to ``segments``
    for the caller to release.  Returns the (possibly rebuilt) payload.
    """
    if _shared_memory is None:
        return task
    if _eligible(task, threshold):
        return _share_array(task, segments)
    if isinstance(task, tuple):
        return tuple(share_payload(item, segments, threshold)
                     for item in task)
    if isinstance(task, list):
        return [share_payload(item, segments, threshold) for item in task]
    if isinstance(task, dict):
        return {key: share_payload(value, segments, threshold)
                for key, value in task.items()}
    return task


def resolve_payload(task):
    """Worker-side inverse of :func:`share_payload`."""
    if isinstance(task, SharedArrayHandle):
        return task.asarray()
    if isinstance(task, tuple):
        return tuple(resolve_payload(item) for item in task)
    if isinstance(task, list):
        return [resolve_payload(item) for item in task]
    if isinstance(task, dict):
        return {key: resolve_payload(value) for key, value in task.items()}
    return task


def release_segments(segments):
    """Close and unlink every segment; tolerates repeated calls."""
    while segments:
        segment = segments.pop()
        with _TRACK_LOCK:
            _ACTIVE_SEGMENTS.discard(segment.name)
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
