"""Nestable timed spans and pluggable trace sinks.

A *span* measures one timed region (a DMM solve, a compiler pass, a
kernel execution).  Spans nest through a per-thread stack, survive
exceptions (the span closes with ``status="error"`` and re-raises), and
on close both

* observe their duration into the histogram ``<name>.seconds`` on the
  active registry, and
* emit a JSON-friendly event dict to the registry's sinks.

Three sinks cover the observability edges:

* :class:`JsonlSink` -- appends one JSON object per line to a file; the
  format behind the CLI's ``--trace out.jsonl``.
* :class:`ConsoleSink` -- pretty-prints events to a stream (the only
  place besides the CLI allowed to write to stdout).
* :class:`NullSink` -- swallows events; useful to keep a registry's
  metric side live while silencing its trace side.

When telemetry is disabled (the default), :func:`span` returns a shared
no-op context manager, so an instrumented region pays two attribute
lookups and no clock read.

Spans and events additionally carry a **trace id** when one is active:
:func:`new_trace_id` mints one, :func:`use_trace` installs it on the
current context (a :class:`contextvars.ContextVar`, so concurrent
asyncio tasks keep distinct traces), and every span/event produced
under it records ``"trace"``.  The serving stack mints one id per HTTP
request and ships it across executor threads and worker processes, so
a single Chrome-trace export shows the request's whole life.
"""

import collections
import contextlib
import contextvars
import json
import os
import threading
import time

from . import telemetry

# -- trace context ---------------------------------------------------------

_trace_var = contextvars.ContextVar("repro_trace_id", default=None)


def new_trace_id():
    """A fresh 16-hex-char trace id (cryptographically random)."""
    return os.urandom(8).hex()


def current_trace_id():
    """The trace id active on this context, or None.

    The innermost open span's trace wins (a span inherits and pins the
    id that was active when it opened); otherwise the ambient value
    installed by :func:`use_trace`.
    """
    for open_span in reversed(_stack()):
        if open_span.trace is not None:
            return open_span.trace
    return _trace_var.get()


@contextlib.contextmanager
def use_trace(trace_id):
    """Scoped activation: install ``trace_id``, restore the old one after.

    Passing None is allowed and simply clears the ambient id for the
    scope, so callers can forward a maybe-absent id unconditionally.
    """
    token = _trace_var.set(trace_id)
    try:
        yield trace_id
    finally:
        _trace_var.reset(token)


def point_event(name, attrs=None, clock=time.time):
    """Event dict for an instantaneous occurrence (no duration).

    Tagged with the active trace id, when there is one.
    """
    event = {"type": "event", "name": name, "ts": clock()}
    trace = current_trace_id()
    if trace is not None:
        event["trace"] = trace
    if attrs:
        event["attrs"] = dict(attrs)
    return event


class _NullSpan:
    """Shared no-op span handed out while telemetry is disabled."""

    __slots__ = ()

    def __bool__(self):
        return False

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_attr(self, key, value):
        """No-op."""

    def __repr__(self):
        return "NULL_SPAN"


#: The single disabled span instance.
NULL_SPAN = _NullSpan()

_stacks = threading.local()


def _stack():
    stack = getattr(_stacks, "spans", None)
    if stack is None:
        stack = _stacks.spans = []
    return stack


class Span:
    """One timed, attributed region bound to a registry.

    Use through :func:`span`; attributes passed at creation or via
    :meth:`set_attr` land in the emitted event's ``attrs`` field.
    """

    __slots__ = ("registry", "name", "attrs", "depth", "parent", "status",
                 "start_ts", "_start_perf", "duration_s", "trace")

    def __init__(self, registry, name, attrs=None):
        self.registry = registry
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.depth = 0
        self.parent = None
        self.status = "ok"
        self.start_ts = None
        self._start_perf = None
        self.duration_s = None
        self.trace = None

    def __bool__(self):
        return True

    def set_attr(self, key, value):
        """Attach one attribute; visible in the emitted trace event."""
        self.attrs[key] = value

    def __enter__(self):
        stack = _stack()
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        if self.trace is None:
            self.trace = current_trace_id()
        stack.append(self)
        self.start_ts = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = time.perf_counter() - self._start_perf
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: out-of-order close
            stack.remove(self)
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self.registry.histogram(self.name + ".seconds").observe(
            self.duration_s)
        self.registry.emit(self.to_event())
        return False  # never swallow the exception

    def to_event(self):
        """The span's JSON-friendly trace event."""
        event = {
            "type": "span",
            "name": self.name,
            "ts": self.start_ts,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "parent": self.parent,
            "status": self.status,
        }
        if self.trace is not None:
            event["trace"] = self.trace
        if self.attrs:
            event["attrs"] = self.attrs
        return event

    def __repr__(self):
        return "Span(%s, depth=%d, status=%s)" % (
            self.name, self.depth, self.status)


def span(name, **attrs):
    """A timed span on the active registry (no-op when disabled).

    >>> with span("dmm.solver.solve", variables=20) as sp:
    ...     sp.set_attr("satisfied", True)
    """
    registry = telemetry.get_registry()
    if not registry.enabled:
        return NULL_SPAN
    return Span(registry, name, attrs)


def current_span():
    """The innermost open span on this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


# -- sinks -----------------------------------------------------------------

class TraceSink:
    """Interface: anything with ``emit(event_dict)`` (and ``close()``)."""

    def emit(self, event):
        raise NotImplementedError

    def close(self):
        """Release resources; emitting after close is an error."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class NullSink(TraceSink):
    """Swallows every event."""

    def emit(self, event):
        """No-op."""


class ListSink(TraceSink):
    """Buffers events in memory (``.events``), in arrival order.

    The parallel execution engine attaches one to each worker-local
    registry so worker-side spans/events can be shipped back to the
    parent process and re-emitted into the parent's sinks at join.
    """

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class JsonlSink(TraceSink):
    """Appends one compact JSON object per event to ``path``.

    The file is opened lazily on the first event (so attaching the sink
    is free when nothing fires) and each line is flushed immediately --
    traces survive a crashed run.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None
        self._lock = threading.Lock()
        self.events_written = 0

    def emit(self, event):
        line = json.dumps(event, default=str, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.events_written += 1

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_jsonl(path):
    """Load a JSONL trace back into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class ConsoleSink(TraceSink):
    """Pretty-prints events, one line each, to a writable stream.

    ``stream`` is required rather than defaulted to ``sys.stdout``: the
    library never writes to stdout on its own, only the CLI decides to.
    """

    def __init__(self, stream):
        self.stream = stream

    def emit(self, event):
        indent = "  " * int(event.get("depth", 0))
        if event.get("type") == "span":
            duration = telemetry.fmt_seconds(event.get("duration_s") or 0.0)
            line = "%s[span] %s %s" % (indent, event["name"], duration)
            if event.get("status") != "ok":
                line += " status=%s" % event["status"]
        else:
            line = "%s[event] %s" % (indent, event.get("name", "?"))
        attrs = event.get("attrs")
        if attrs:
            line += "  " + " ".join(
                "%s=%s" % (key, telemetry.fmt_quantity(attrs[key]))
                for key in sorted(attrs))
        self.stream.write(line + "\n")


# -- Chrome trace-event export ---------------------------------------------

#: pid used for every exported event (one logical process per trace).
CHROME_PID = 1

#: tid of the main (untagged) span stream; worker chunk ``i`` maps to
#: ``CHROME_MAIN_TID + 1 + i`` so each chunk gets its own track.
CHROME_MAIN_TID = 1


def _chrome_tid(event):
    worker = event.get("worker")
    if worker is None:
        return CHROME_MAIN_TID
    try:
        return CHROME_MAIN_TID + 1 + int(worker)
    except (TypeError, ValueError):
        return CHROME_MAIN_TID + 1


def chrome_trace_events(events):
    """Convert telemetry events to Chrome trace-event dicts.

    Spans become complete (``"ph": "X"``) events -- start timestamp and
    duration in microseconds -- and point events become instants
    (``"ph": "i"``).  Spans merged back from parallel workers (tagged
    ``"worker": <chunk>``) land on their own thread track, so a
    ``--workers 4`` run shows its chunks as parallel lanes.  Events are
    returned sorted by timestamp (ties: longer span first, so a parent
    precedes the children it encloses), preceded by thread-name metadata
    events -- exactly the list Perfetto / ``chrome://tracing`` expects
    under ``traceEvents``.
    """
    out = []
    tids = set()
    for event in events:
        if not isinstance(event, dict) or "ts" not in event:
            continue
        tid = _chrome_tid(event)
        args = dict(event.get("attrs") or {})
        if event.get("trace") is not None:
            args.setdefault("trace", event["trace"])
        ts_us = float(event.get("ts") or 0.0) * 1e6
        if event.get("type") == "span":
            if event.get("status", "ok") != "ok":
                args.setdefault("status", event["status"])
            out.append({
                "name": str(event.get("name", "?")),
                "cat": "span",
                "ph": "X",
                "ts": ts_us,
                "dur": max(0.0, float(event.get("duration_s") or 0.0)) * 1e6,
                "pid": CHROME_PID,
                "tid": tid,
                "args": args,
            })
        elif event.get("type") == "event":
            out.append({
                "name": str(event.get("name", "?")),
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": ts_us,
                "pid": CHROME_PID,
                "tid": tid,
                "args": args,
            })
        else:
            continue
        tids.add(tid)
    out.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    metadata = []
    for tid in sorted(tids):
        name = "main" if tid == CHROME_MAIN_TID \
            else "worker-%d" % (tid - CHROME_MAIN_TID - 1)
        metadata.append({"name": "thread_name", "ph": "M",
                         "pid": CHROME_PID, "tid": tid,
                         "args": {"name": name}})
    return metadata + out


def write_chrome_trace(events, path):
    """Write telemetry events as a Chrome JSON trace; returns the count.

    The file is the object form of the trace-event format
    (``{"traceEvents": [...]}``), loadable by Perfetto
    (https://ui.perfetto.dev) and ``chrome://tracing``.  Metadata events
    are not counted in the return value.
    """
    converted = chrome_trace_events(events)
    document = {"traceEvents": converted, "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(document, handle, default=str, separators=(",", ":"))
        handle.write("\n")
    return sum(1 for event in converted if event.get("ph") != "M")


def read_chrome_trace(path):
    """Load a Chrome trace file back; returns the ``traceEvents`` list."""
    with open(path) as handle:
        document = json.load(handle)
    if isinstance(document, list):  # bare-array form
        return document
    return document.get("traceEvents", [])


class ChromeTraceSink(TraceSink):
    """Buffers events and writes a Chrome JSON trace on close.

    Unlike :class:`JsonlSink` (streaming, crash-safe), the Chrome format
    is one JSON document, so the file materializes at :meth:`close` --
    use the sink as a context manager or close it explicitly.  The CLI's
    ``repro profile --out trace.json`` drives one of these.
    """

    def __init__(self, path):
        self.path = path
        self.events = []
        self.events_written = 0

    def emit(self, event):
        self.events.append(event)

    def close(self):
        if self.events or not self.events_written:
            self.events_written = write_chrome_trace(self.events, self.path)
            self.events = []


# -- flight recorder -------------------------------------------------------

#: Event names that make a :class:`FlightRecorder` dump automatically;
#: a pool-worker restart is the one in-library crash signal.
DEFAULT_FLIGHT_TRIGGERS = ("parallel.pool.restart",)


class FlightRecorder(TraceSink):
    """Bounded ring of recent trace events, dumped to disk on failure.

    Attach to a registry like any sink; it retains the last
    ``capacity`` events in memory and writes them all out as one JSONL
    file (newest last, preceded by a ``{"type": "flight", ...}`` header
    line) when :meth:`dump` is called -- either explicitly (the job
    service dumps when a job fails) or automatically when an event
    named in ``triggers`` passes through (a killed worker's restart).
    Only the most recent ``keep`` dump files are retained.
    """

    def __init__(self, directory, capacity=256,
                 triggers=DEFAULT_FLIGHT_TRIGGERS, keep=8, clock=time.time):
        self.directory = directory
        self.capacity = capacity
        self.triggers = frozenset(triggers)
        self.keep = keep
        self._clock = clock
        self._ring = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dump_paths = []
        self.dumps_written = 0

    def emit(self, event):
        with self._lock:
            self._ring.append(event)
        if event.get("name") in self.triggers:
            self.dump(str(event.get("name")))

    def dump(self, reason):
        """Write the ring to a new JSONL file; returns its path."""
        safe = "".join(ch if (ch.isalnum() or ch in "._-") else "-"
                       for ch in str(reason))[:80] or "dump"
        with self._lock:
            events = list(self._ring)
            sequence = self.dumps_written
            self.dumps_written += 1
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory,
                            "flight-%04d-%s.jsonl" % (sequence, safe))
        with open(path, "w") as handle:
            header = {"type": "flight", "reason": str(reason),
                      "ts": self._clock(), "events": len(events)}
            handle.write(json.dumps(header, default=str,
                                    separators=(",", ":")) + "\n")
            for event in events:
                handle.write(json.dumps(event, default=str,
                                        separators=(",", ":")) + "\n")
        with self._lock:
            self._dump_paths.append(path)
            stale = self._dump_paths[:-self.keep] if self.keep else []
            self._dump_paths = self._dump_paths[len(stale):]
        for old in stale:
            try:
                os.remove(old)
            except OSError:
                pass
        return path
