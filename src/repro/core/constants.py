"""Physical constants and unit helpers used across the device models.

All internal computations use SI units.  The helpers here exist so that
module code can say ``3 * MILLI`` or ``freq_hz / MEGA`` instead of magic
powers of ten, and so device modules share one source of truth for
physical constants.
"""

import math

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------
TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# ---------------------------------------------------------------------------
# Physical constants (CODATA 2018 values, SI)
# ---------------------------------------------------------------------------
BOLTZMANN_J_PER_K = 1.380649e-23
ELEMENTARY_CHARGE_C = 1.602176634e-19
PLANCK_J_S = 6.62607015e-34
REDUCED_PLANCK_J_S = PLANCK_J_S / (2.0 * math.pi)

#: Thermal voltage kT/q at 300 K, in volts.
THERMAL_VOLTAGE_300K_V = BOLTZMANN_J_PER_K * 300.0 / ELEMENTARY_CHARGE_C

#: Operating temperature of superconducting qubit chips quoted by the
#: paper's Section II ("around 20 mK").
SUPERCONDUCTING_QUBIT_TEMP_K = 20e-3


def db(ratio):
    """Return ``ratio`` expressed in decibels (power convention).

    >>> round(db(10.0), 6)
    10.0
    """
    if ratio <= 0.0:
        raise ValueError("dB of a non-positive ratio is undefined: %r" % ratio)
    return 10.0 * math.log10(ratio)


def from_db(decibels):
    """Inverse of :func:`db` (power convention)."""
    return 10.0 ** (decibels / 10.0)


def celsius_to_kelvin(temp_c):
    """Convert a temperature from Celsius to Kelvin."""
    kelvin = temp_c + 273.15
    if kelvin < 0.0:
        raise ValueError("temperature below absolute zero: %r C" % temp_c)
    return kelvin


def period_from_frequency(freq_hz):
    """Return the period in seconds of a strictly positive frequency."""
    if freq_hz <= 0.0:
        raise ValueError("frequency must be positive, got %r" % freq_hz)
    return 1.0 / freq_hz
