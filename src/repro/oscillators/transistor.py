"""Series MOSFET model: the frequency-tuning element of the 1T1R cell.

Section III.A: "The replacement of the series resistor with a transistor
allows control of the frequency of oscillation through the transistor
gate voltage which adjusts the effective series resistance seen by the
IMT device."

For the oscillator's operating regime (small drain-source voltage across
a conducting channel) the transistor is well approximated by its triode-
region channel resistance, which is what the coupled-oscillator
literature uses for these cells:

    R_ds(Vgs) = 1 / (k_n * (Vgs - Vt))    for Vgs > Vt.

The model exposes that resistance plus the square-law drain current for
completeness; the oscillator simulation consumes ``channel_resistance``.
"""

from ..core.exceptions import DeviceModelError


class SeriesTransistor:
    """Square-law NMOS used as a gate-voltage-controlled series resistor.

    Parameters
    ----------
    k_n : float
        Transconductance parameter (A/V^2 aggregate, i.e. already
        including W/L), sized so the mid-range Vgs gives a channel
        resistance comparable to the VO2 insulating resistance.
    v_threshold : float
        Threshold voltage in volts.
    r_min : float
        Floor on the channel resistance (contact/series parasitics),
        keeping the model physical at large overdrive.
    """

    def __init__(self, k_n=2e-5, v_threshold=0.4, r_min=500.0):
        if k_n <= 0:
            raise DeviceModelError("k_n must be positive")
        if r_min <= 0:
            raise DeviceModelError("r_min must be positive")
        self.k_n = float(k_n)
        self.v_threshold = float(v_threshold)
        self.r_min = float(r_min)

    def channel_resistance(self, v_gs):
        """Triode channel resistance at gate-source voltage ``v_gs``.

        Raises :class:`DeviceModelError` below threshold -- a cut-off
        series transistor cannot sustain oscillation, so asking for its
        resistance indicates a configuration error upstream.
        """
        overdrive = v_gs - self.v_threshold
        if overdrive <= 0.0:
            raise DeviceModelError(
                "transistor cut off at v_gs=%g (Vt=%g); the oscillator "
                "cannot run" % (v_gs, self.v_threshold)
            )
        return max(self.r_min, 1.0 / (self.k_n * overdrive))

    def drain_current(self, v_gs, v_ds):
        """Square-law drain current (triode/saturation selected by v_ds)."""
        overdrive = v_gs - self.v_threshold
        if overdrive <= 0.0 or v_ds <= 0.0:
            return 0.0
        if v_ds < overdrive:
            return self.k_n * (overdrive * v_ds - 0.5 * v_ds ** 2)
        return 0.5 * self.k_n * overdrive ** 2

    def __repr__(self):
        return ("SeriesTransistor(k_n=%g, v_threshold=%g)"
                % (self.k_n, self.v_threshold))
