"""The 1T1R VO2 relaxation oscillator (Section III.A, Fig. 3's building block).

Topology: supply ``v_dd`` -- VO2 device -- output node ``v`` -- series
transistor -- ground, with node capacitance ``c_p`` to ground.  The node
obeys

    c_p dv/dt = (v_dd - v) / R_vo2(phase) - v / R_s(v_gs)

with the VO2 phase switching per the hysteretic thresholds
(:class:`repro.oscillators.vo2.Vo2Device`).  In each phase the dynamics
are a single-pole RC relaxation, so the free-running period has a closed
form used to cross-check the time-domain simulation:

    T = tau_ins * ln((v_high - v_inf_ins) / (v_low - v_inf_ins))
      + tau_met * ln((v_inf_met - v_low) / (v_inf_met - v_high))

where ``v_low = v_dd - v_imt`` and ``v_high = v_dd - v_mit`` are the node
voltages at the two switching events.
"""

import math

import numpy as np

from ..core import telemetry
from ..core.exceptions import DeviceModelError
from ..core.integrators import Trajectory
from .transistor import SeriesTransistor
from .vo2 import INSULATING, METALLIC, Vo2Device


class RelaxationOscillator:
    """A single VO2/MOSFET relaxation oscillator.

    Parameters
    ----------
    v_gs : float
        Gate voltage of the series transistor: the oscillator's input /
        frequency-tuning terminal (this is where Section III encodes
        information).
    vo2 : Vo2Device, optional
    transistor : SeriesTransistor, optional
    v_dd : float
        Supply voltage, volts.
    c_p : float
        Output-node capacitance, farads.
    """

    def __init__(self, v_gs, vo2=None, transistor=None, v_dd=1.8, c_p=100e-12):
        if v_dd <= 0:
            raise DeviceModelError("v_dd must be positive")
        if c_p <= 0:
            raise DeviceModelError("c_p must be positive")
        self.v_gs = float(v_gs)
        self.vo2 = vo2 if vo2 is not None else Vo2Device()
        self.transistor = transistor if transistor is not None \
            else SeriesTransistor()
        self.v_dd = float(v_dd)
        self.c_p = float(c_p)
        if self.vo2.v_imt >= self.v_dd:
            raise DeviceModelError(
                "v_imt (%g) must be below v_dd (%g) or the device never fires"
                % (self.vo2.v_imt, self.v_dd)
            )

    # -- small-signal bookkeeping ---------------------------------------------

    @property
    def series_resistance(self):
        """Channel resistance of the series transistor at this v_gs."""
        return self.transistor.channel_resistance(self.v_gs)

    @property
    def v_low(self):
        """Node voltage at the insulator->metal switching event."""
        return self.v_dd - self.vo2.v_imt

    @property
    def v_high(self):
        """Node voltage at the metal->insulator switching event."""
        return self.v_dd - self.vo2.v_mit

    def equilibrium_voltage(self, phase):
        """Asymptotic node voltage if the phase were frozen."""
        r_s = self.series_resistance
        r_v = self.vo2.resistance(phase)
        return self.v_dd * r_s / (r_s + r_v)

    def time_constant(self, phase):
        """RC time constant of the node in the given phase."""
        r_s = self.series_resistance
        r_v = self.vo2.resistance(phase)
        parallel = r_s * r_v / (r_s + r_v)
        return self.c_p * parallel

    def can_oscillate(self):
        """True when the load line crosses the hysteretic unstable region.

        Requires the insulating-phase equilibrium to lie below the IMT
        switch level and the metallic-phase equilibrium to lie above the
        MIT switch level (the paper's "load line passes through the
        unstable regions" condition).
        """
        return (self.equilibrium_voltage(INSULATING) < self.v_low
                and self.equilibrium_voltage(METALLIC) > self.v_high)

    def analytic_period(self):
        """Closed-form free-running period in seconds.

        Raises :class:`DeviceModelError` when the bias point does not
        satisfy :meth:`can_oscillate`.
        """
        if not self.can_oscillate():
            raise DeviceModelError(
                "bias point v_gs=%g does not sustain oscillation" % self.v_gs
            )
        v_inf_ins = self.equilibrium_voltage(INSULATING)
        v_inf_met = self.equilibrium_voltage(METALLIC)
        t_ins = self.time_constant(INSULATING) * math.log(
            (self.v_high - v_inf_ins) / (self.v_low - v_inf_ins))
        t_met = self.time_constant(METALLIC) * math.log(
            (v_inf_met - self.v_low) / (v_inf_met - self.v_high))
        return t_ins + t_met

    def natural_frequency(self):
        """Free-running frequency in hertz (1 / analytic period)."""
        return 1.0 / self.analytic_period()

    def node_derivative(self, v, phase):
        """Right-hand side c_p dv/dt (before dividing by c_p)."""
        r_v = self.vo2.resistance(phase)
        r_s = self.series_resistance
        return ((self.v_dd - v) / r_v - v / r_s) / self.c_p

    # -- time-domain simulation ------------------------------------------------

    def simulate(self, t_end, dt=None, v0=None, phase0=INSULATING,
                 record_phases=False):
        """Integrate the oscillator; returns a :class:`Trajectory` of v(t).

        The VO2 phase is a discrete state updated after every step from
        the device voltage ``v_dd - v``.  ``dt`` defaults to 1/200 of the
        analytic period when the bias oscillates, else to ``t_end/10000``.
        When ``record_phases`` is true, returns ``(trajectory, phases)``
        with one phase label per sample.
        """
        if v0 is None:
            v0 = self.equilibrium_voltage(phase0) * 0.5 + self.v_low * 0.5
        if dt is None:
            if self.can_oscillate():
                dt = self.analytic_period() / 200.0
            else:
                dt = t_end / 10000.0
        v = float(v0)
        phase = phase0
        times = [0.0]
        values = [v]
        phases = [phase]
        t = 0.0
        while t < t_end - 1e-18:
            step = min(dt, t_end - t)
            # RK4 within the frozen phase; the phase flip is applied at the
            # end of the step (first-order event handling, adequate at
            # 200 samples/cycle and verified against the analytic period).
            k1 = self.node_derivative(v, phase)
            k2 = self.node_derivative(v + 0.5 * step * k1, phase)
            k3 = self.node_derivative(v + 0.5 * step * k2, phase)
            k4 = self.node_derivative(v + step * k3, phase)
            v = v + (step / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
            t += step
            phase = self.vo2.next_phase(phase, self.v_dd - v)
            times.append(t)
            values.append(v)
            phases.append(phase)
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter("oscillator.relaxation.simulations").inc()
            registry.counter("oscillator.relaxation.steps").inc(
                len(times) - 1)
        trajectory = Trajectory(np.asarray(times),
                                np.asarray(values).reshape(-1, 1),
                                n_steps=len(times) - 1)
        if record_phases:
            return trajectory, phases
        return trajectory


def frequency_tuning_curve(v_gs_values, **oscillator_kwargs):
    """Analytic frequency at each gate voltage; None where not oscillating.

    This is the encoder's transfer function: Section III encodes input
    values in ``v_gs``, and this curve is how a value maps to a natural
    frequency.
    """
    frequencies = []
    for v_gs in v_gs_values:
        try:
            oscillator = RelaxationOscillator(v_gs, **oscillator_kwargs)
            oscillates = oscillator.can_oscillate()
        except DeviceModelError:
            # cut-off transistor or otherwise unphysical bias point
            frequencies.append(None)
            continue
        if oscillates:
            frequencies.append(oscillator.natural_frequency())
        else:
            frequencies.append(None)
    return frequencies
