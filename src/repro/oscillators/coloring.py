"""Graph vertex coloring via phase dynamics of coupled oscillators.

Section III cites this as a flagship oscillator application: "The
efficiency of a coupled oscillator-based system ... has been shown in
computer vision problems such as vertex coloring of graphs [42]"
(Parihar, Shukla, Jerry, Datta, Raychowdhury, Scientific Reports 2017).

The principle: place one oscillator per vertex and couple oscillators
along graph edges with an interaction that favours *anti-phase* (our
series-RC coupling does exactly this, see Fig. 5 calibration).  The
steady-state phases then spread out so that adjacent vertices sit far
apart on the phase circle; clustering the settled phases yields a color
assignment.  For graphs that are c-colorable with strong structure the
phase ordering recovers a proper coloring -- [42] showed this resolves
the vertices into "the minimum set of phase-distinct groups".

The implementation reuses the physical oscillator network unchanged:
identical oscillators, one coupling branch per edge.
"""

import numpy as np

from ..core.exceptions import OscillatorError
from ..core.signals import instantaneous_phase
from .coupling import CoupledOscillatorNetwork, CouplingBranch
from .locking import DEFAULT_C_C
from .relaxation import RelaxationOscillator


class ColoringResult:
    """Outcome of a phase-dynamics coloring run.

    Attributes
    ----------
    colors : list of int
        Color index per vertex.
    phases : numpy.ndarray
        Settled relative phase per vertex, in cycles within [0, 1).
    conflicts : int
        Edges whose endpoints share a color.
    num_colors : int
        Distinct colors used.
    """

    def __init__(self, colors, phases, conflicts):
        self.colors = list(colors)
        self.phases = np.asarray(phases)
        self.conflicts = int(conflicts)
        self.num_colors = len(set(self.colors))

    @property
    def is_proper(self):
        """True when no edge is monochromatic."""
        return self.conflicts == 0

    def __repr__(self):
        return ("ColoringResult(colors=%d, conflicts=%d)"
                % (self.num_colors, self.conflicts))


def _settled_phases(network, trajectory, threshold=1.0):
    """Relative phases of every oscillator over the final cycles."""
    times = trajectory.times
    reference_times, reference_phase = instantaneous_phase(
        times, trajectory.component(0), threshold)
    phases = [0.0]
    for index in range(1, network.num_oscillators):
        t_i, phi_i = instantaneous_phase(
            times, trajectory.component(index), threshold)
        lo = max(reference_times[0], t_i[0])
        hi = min(reference_times[-1], t_i[-1])
        if hi <= lo:
            raise OscillatorError("oscillator %d never locked a phase"
                                  % index)
        grid = np.linspace(lo, hi, 256)
        difference = np.interp(grid, t_i, phi_i) \
            - np.interp(grid, reference_times, reference_phase)
        steady = difference[len(difference) // 2:]
        phases.append(float(np.mean(steady) % 1.0))
    return np.asarray(phases)


def color_graph(edges, num_vertices, num_colors, r_c=35e3, c_c=DEFAULT_C_C,
                cycles=120, v_gs=1.8, rng_phases=None):
    """Color a graph by relaxing its coupled-oscillator analog.

    Parameters
    ----------
    edges : iterable of (u, v)
        Undirected edges over vertices ``0..num_vertices-1``.
    num_vertices : int
    num_colors : int
        Number of phase bins to quantize into (the target chromatic
        budget; [42]'s phase-ordering step).
    r_c, c_c : float
        Coupling element values (anti-phase-favouring regime).
    cycles : int
        Settling time in oscillation periods.
    rng_phases : seed/Generator, optional
        Randomizes the initial node voltages (initial phases).

    Returns a :class:`ColoringResult`.
    """
    edges = [(int(u), int(v)) for u, v in edges]
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise OscillatorError("edge (%d, %d) out of range" % (u, v))
        if u == v:
            raise OscillatorError("self-loop on vertex %d" % u)
    if num_colors < 2:
        raise OscillatorError("need at least two colors")
    oscillators = [RelaxationOscillator(v_gs)
                   for _ in range(num_vertices)]
    branches = [CouplingBranch(u, v, r_c=r_c, c_c=c_c) for u, v in edges]
    network = CoupledOscillatorNetwork(oscillators, branches)

    period = oscillators[0].analytic_period()
    low = oscillators[0].v_low
    swing = oscillators[0].v_high - low
    if rng_phases is not None:
        from ..core.rngs import make_rng

        rng = make_rng(rng_phases)
        fractions = rng.uniform(0.1, 0.9, size=num_vertices)
    else:
        fractions = np.linspace(0.25, 0.75, num_vertices)
    initial = [low + fraction * swing for fraction in fractions]
    trajectory, _phases = network.simulate(cycles * period,
                                           initial_voltages=initial)
    phases = _settled_phases(network, trajectory)

    # quantize phases into color bins after rotating so bin edges do not
    # split the tightest cluster: sort phases, cut at the largest gaps
    order = np.argsort(phases)
    sorted_phases = phases[order]
    gaps = np.diff(np.concatenate([sorted_phases,
                                   [sorted_phases[0] + 1.0]]))
    cut_positions = np.sort(np.argsort(gaps)[-num_colors:])
    colors = np.zeros(num_vertices, dtype=int)
    color = 0
    for rank, vertex in enumerate(order):
        colors[vertex] = color
        if rank in cut_positions:
            color += 1
    colors %= num_colors

    conflicts = sum(1 for u, v in edges if colors[u] == colors[v])
    return ColoringResult(colors.tolist(), phases, conflicts)
