"""An accuracy-tunable non-Boolean oscillator co-processor.

Section III cites [44] (Gala et al., JETC 2018): "a coupled
oscillator-based co-processor has been proposed to accelerate
computations like sorting, degree of matching, etc. for use in
applications such as pattern recognition, clustering, and text
recognition."  This module provides those primitives on the library's
physical oscillator model:

* :func:`rank_order_sort` -- values are encoded as gate voltages; the
  monotone frequency-vs-Vgs transfer of the 1T1R cell turns magnitude
  into spike rate, and counting threshold crossings over a fixed window
  reads out the ordering (larger input -> more spikes).  The window
  length is the *accuracy dial*: short windows are fast but may swap
  near-ties -- exactly the accuracy-tunability [44] advertises.
* :func:`degree_of_match` -- the mean pairwise XOR-readout measure
  between a template vector and an input vector: the co-processor's
  pattern-matching primitive built from the Fig. 4/5 distance blocks.
"""

import numpy as np

from ..core import telemetry
from ..core.events import rising_crossings
from ..core.exceptions import OscillatorError
from .distance import OscillatorDistanceUnit
from .relaxation import RelaxationOscillator


def value_to_v_gs(value, full_scale, base_v_gs=1.6, v_gs_span=1.0):
    """Map a value in ``[0, full_scale]`` onto the oscillator's Vgs dial.

    The span is chosen wide (default 1.6 V .. 2.6 V) because sorting
    exploits the *frequency* transfer rather than phase locking, so the
    inputs may use the whole tuning range.
    """
    if not 0.0 <= value <= full_scale:
        raise OscillatorError("value %r outside [0, %r]"
                              % (value, full_scale))
    return base_v_gs + (value / full_scale) * v_gs_span


def rank_order_sort(values, full_scale=None, window_cycles=40.0,
                    threshold=1.0):
    """Sort values by spike counting on per-value oscillators.

    Parameters
    ----------
    values : sequence of float
        Non-negative inputs.
    full_scale : float, optional
        Encoding full scale (defaults to ``max(values)``).
    window_cycles : float
        Observation window in periods of the *slowest* oscillator; the
        accuracy dial (longer -> finer rank resolution).
    threshold : float
        Spike-detection threshold on the node voltage.

    Returns
    -------
    (order, counts) : (list of int, list of int)
        ``order`` is the claimed ascending argsort of the inputs;
        ``counts`` the spike counts that produced it.
    """
    values = [float(v) for v in values]
    if not values:
        raise OscillatorError("nothing to sort")
    if any(v < 0 for v in values):
        raise OscillatorError("rank-order sorting needs non-negative values")
    if full_scale is None:
        full_scale = max(values) or 1.0
    oscillators = [
        RelaxationOscillator(value_to_v_gs(value, full_scale))
        for value in values
    ]
    slowest_period = max(osc.analytic_period() for osc in oscillators)
    window = window_cycles * slowest_period
    counts = []
    with telemetry.span("oscillator.coprocessor.rank_sort",
                        values=len(values), window_cycles=window_cycles):
        for oscillator in oscillators:
            trajectory = oscillator.simulate(window)
            spikes = rising_crossings(trajectory.times,
                                      trajectory.component(0), threshold)
            counts.append(len(spikes))
    registry = telemetry.get_registry()
    if registry.enabled:
        registry.counter("oscillator.coprocessor.sorts").inc()
        registry.counter("oscillator.coprocessor.spikes").inc(sum(counts))
    order = sorted(range(len(values)), key=lambda i: (counts[i], values[i]))
    return order, counts


def degree_of_match(template, candidate, distance_unit=None):
    """Pattern-match score in [0, 1]: 1 for identical vectors.

    Each component pair goes through the oscillator distance primitive;
    the score is ``1 - mean(measure)`` -- high when every component pair
    reads "close" on the XOR metric.  This is the building block [44]
    uses for pattern recognition and clustering.
    """
    template = np.asarray(template, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    if template.shape != candidate.shape:
        raise OscillatorError("template/candidate shape mismatch")
    if template.size == 0:
        raise OscillatorError("empty pattern")
    unit = distance_unit or OscillatorDistanceUnit()
    telemetry.counter("oscillator.coprocessor.matches").inc()
    measures = unit.measure_batch(template.ravel(), candidate.ravel())
    return 1.0 - float(np.mean(measures))


def best_match(template, candidates, distance_unit=None):
    """Index and score of the best-matching candidate pattern."""
    scores = [degree_of_match(template, candidate,
                              distance_unit=distance_unit)
              for candidate in candidates]
    best = int(np.argmax(scores))
    return best, scores


class AssociativeMemory:
    """Oscillator-based associative memory (the paper's ref. [39]).

    Section III opens with [39]: "an array of weakly coupled oscillators
    is shown to synchronize when coupled together with close initial
    states.  These synchronized oscillatory systems can be leveraged to
    perform several associative functions."  The associative function is
    content-addressable recall: a degraded probe retrieves the stored
    pattern it synchronizes with best -- here measured through the
    degree-of-match primitive built on the XOR distance blocks.

    Parameters
    ----------
    distance_unit : OscillatorDistanceUnit, optional
        The comparison primitive shared by all stored patterns.
    match_threshold : float
        Minimum degree-of-match for a recall to count (below it the
        memory reports no association).
    """

    def __init__(self, distance_unit=None, match_threshold=0.6):
        if not 0.0 < match_threshold <= 1.0:
            raise OscillatorError("match_threshold must be in (0, 1]")
        self.distance_unit = distance_unit or OscillatorDistanceUnit()
        self.match_threshold = float(match_threshold)
        self._patterns = []
        self._labels = []

    def store(self, pattern, label=None):
        """Store a pattern (any flat numeric sequence); returns its index."""
        pattern = np.asarray(pattern, dtype=float).ravel()
        if pattern.size == 0:
            raise OscillatorError("cannot store an empty pattern")
        if self._patterns and pattern.size != self._patterns[0].size:
            raise OscillatorError("pattern length mismatch with memory")
        self._patterns.append(pattern)
        self._labels.append(label if label is not None
                            else len(self._patterns) - 1)
        return len(self._patterns) - 1

    def __len__(self):
        return len(self._patterns)

    def recall(self, probe):
        """Content-addressable recall.

        Returns ``(pattern, label, score)`` for the best-matching stored
        pattern, or ``(None, None, score)`` when nothing clears the
        match threshold.
        """
        if not self._patterns:
            raise OscillatorError("memory is empty")
        index, scores = best_match(probe, self._patterns,
                                   distance_unit=self.distance_unit)
        score = scores[index]
        if score < self.match_threshold:
            return None, None, score
        return self._patterns[index].copy(), self._labels[index], score

    def recall_accuracy(self, probes, expected_labels):
        """Fraction of probes recalled with the expected label."""
        correct = 0
        for probe, expected in zip(probes, expected_labels):
            _pattern, label, _score = self.recall(probe)
            correct += int(label == expected)
        return correct / len(expected_labels)
