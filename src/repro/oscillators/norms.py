"""Effective l_k distance norms from the XOR measure (Fig. 5).

"For a large range of coupling strengths, two nearly-identical
oscillators always have the [1-Avg(XOR)] measure minima near the point
where dVgs = 0.  For increasing coupling strengths, (that is, decreasing
R_C), the shape of the curves around the minima point follow increasing
l_k norms ... from almost (k ~ 1.6) to parabolic (k ~ 2.0) to extremely
nonlinear (k ~ 3.4)."

This module sweeps the input difference, records the XOR measure, and
fits the effective exponent ``k`` of ``measure(d) - measure(0) ~ d^k`` by
log-log regression around the minimum -- the quantity Fig. 5 plots.
"""

import numpy as np

from ..core.exceptions import OscillatorError
from .locking import DEFAULT_C_C, DEFAULT_CYCLES, simulate_calibrated_pair
from .readout import XorReadout


def xor_measure_curve(base_v_gs, delta_v_gs_values, r_c, c_c=DEFAULT_C_C,
                      cycles=DEFAULT_CYCLES, readout=None,
                      oscillator_kwargs=None):
    """The Fig. 5 raw material: XOR measure at each input difference.

    Returns an array of ``1 - Avg(XOR)`` values aligned with
    ``delta_v_gs_values``.
    """
    readout = readout or XorReadout()
    measures = []
    for delta in delta_v_gs_values:
        times, v_1, v_2 = simulate_calibrated_pair(
            base_v_gs, base_v_gs + delta, r_c, c_c=c_c, cycles=cycles,
            oscillator_kwargs=oscillator_kwargs)
        measures.append(readout.measure(times, v_1, v_2))
    return np.asarray(measures)


def fit_norm_exponent(delta_v_gs_values, measures, min_delta_measure=1e-3):
    """Fit ``k`` in ``measure(d) - min(measure) ~ |d - d_min|^k``.

    Per the paper, the curves "have the [1-Avg(XOR)] measure minima
    *near* the point where dVgs = 0" -- not necessarily exactly at it --
    so the fit's baseline is the sweep minimum, and the exponent is the
    log-log slope of the rise beyond the minimum.  Two exclusions keep
    the fit inside the l_k regime:

    * points whose rise is below ``min_delta_measure`` (noise floor),
    * points beyond the locking edge, detected as the first substantial
      fall-back of the curve (the paper: curves "becoming irregular near
      the edge of the locking range").

    Raises :class:`OscillatorError` when fewer than three usable points
    remain.
    """
    deltas = np.abs(np.asarray(delta_v_gs_values, dtype=float))
    measures = np.asarray(measures, dtype=float)
    if len(deltas) != len(measures):
        raise OscillatorError("deltas/measures length mismatch")
    if len(deltas) < 4:
        raise OscillatorError("need at least four sweep points")
    order = np.argsort(deltas)
    deltas = deltas[order]
    measures = measures[order]
    # locate the minimum within the small-delta half of the sweep
    half = max(1, len(deltas) // 2)
    min_position = int(np.argmin(measures[:half + 1]))
    baseline = float(measures[min_position])
    # truncate at the locking edge: first substantial fall-back
    edge_tolerance = 0.05
    last_usable = len(deltas)
    running_max = baseline
    for position in range(min_position + 1, len(deltas)):
        if measures[position] < running_max - edge_tolerance:
            last_usable = position
            break
        running_max = max(running_max, measures[position])
    offsets = deltas - deltas[min_position]
    rise = measures - baseline
    usable = np.zeros(len(deltas), dtype=bool)
    usable[min_position + 1:last_usable] = True
    usable &= (rise > min_delta_measure) & (offsets > 0)
    if np.count_nonzero(usable) < 3:
        raise OscillatorError(
            "too few points rise above the baseline to fit an exponent")
    slope, _intercept = np.polyfit(np.log(offsets[usable]),
                                   np.log(rise[usable]), 1)
    return float(slope)


def effective_norm_exponent(r_c, base_v_gs=1.8, deltas=None, c_c=DEFAULT_C_C,
                            cycles=DEFAULT_CYCLES, oscillator_kwargs=None):
    """End-to-end Fig. 5 point: simulate the sweep and fit ``k`` for ``r_c``.

    The default detuning grid spans the locked region of the calibrated
    operating point.  Returns ``(k, deltas, measures)``.
    """
    if deltas is None:
        deltas = np.array([0.0, 0.01, 0.02, 0.03, 0.045, 0.06, 0.08])
    measures = xor_measure_curve(base_v_gs, deltas, r_c, c_c=c_c,
                                 cycles=cycles,
                                 oscillator_kwargs=oscillator_kwargs)
    k = fit_norm_exponent(deltas, measures)
    return k, np.asarray(deltas), measures


def analytic_norm_curve(deltas, k, scale=1.0, baseline=0.0):
    """Reference ``baseline + scale * |d|^k`` curve for plotting/tests."""
    deltas = np.abs(np.asarray(deltas, dtype=float))
    return baseline + scale * deltas ** k
