"""RC-coupled networks of VO2 relaxation oscillators (Fig. 3).

"Electrical coupling between two oscillators is achieved through simple
resistive and capacitive elements" -- each coupling branch here is a
series R_C + C_C path between two oscillator output nodes, the
configuration used by the pairwise-coupled HVFET oscillator literature.
The branch adds one state (the coupling-capacitor charge ``q``):

    I_branch = (v_i - v_j - q / C_C) / R_C
    dq/dt    = I_branch

and injects ``-I_branch`` into node ``i`` and ``+I_branch`` into node
``j``.  Decreasing ``R_C`` strengthens the coupling, which is exactly the
knob Fig. 5 sweeps ("for increasing coupling strengths, (that is,
decreasing R_C) ...").
"""

import numpy as np

from ..core.exceptions import OscillatorError
from ..core.integrators import Trajectory
from .relaxation import RelaxationOscillator
from .vo2 import INSULATING


class CouplingBranch:
    """A series R-C coupling element between oscillator nodes ``i`` and ``j``."""

    def __init__(self, i, j, r_c=50e3, c_c=100e-12):
        if i == j:
            raise OscillatorError("coupling branch endpoints must differ")
        if r_c <= 0 or c_c <= 0:
            raise OscillatorError("coupling R and C must be positive")
        self.i = int(i)
        self.j = int(j)
        self.r_c = float(r_c)
        self.c_c = float(c_c)

    def current(self, v_i, v_j, charge):
        """Branch current flowing from node i to node j."""
        return (v_i - v_j - charge / self.c_c) / self.r_c

    def __repr__(self):
        return "CouplingBranch(%d-%d, r_c=%g, c_c=%g)" % (
            self.i, self.j, self.r_c, self.c_c)


class CoupledOscillatorNetwork:
    """N relaxation oscillators joined by series-RC coupling branches.

    Parameters
    ----------
    oscillators : list of RelaxationOscillator
    branches : list of CouplingBranch
    """

    def __init__(self, oscillators, branches):
        if not oscillators:
            raise OscillatorError("need at least one oscillator")
        self.oscillators = list(oscillators)
        self.branches = list(branches)
        n = len(self.oscillators)
        for branch in self.branches:
            if not (0 <= branch.i < n and 0 <= branch.j < n):
                raise OscillatorError(
                    "branch %r references a missing oscillator" % branch)

    @property
    def num_oscillators(self):
        """Number of oscillators in the network."""
        return len(self.oscillators)

    def _derivatives(self, state, phases):
        n = self.num_oscillators
        volts = state[:n]
        charges = state[n:]
        dv = np.empty(n)
        for k, oscillator in enumerate(self.oscillators):
            dv[k] = oscillator.node_derivative(volts[k], phases[k])
        dq = np.empty(len(self.branches))
        for b, branch in enumerate(self.branches):
            current = branch.current(volts[branch.i], volts[branch.j],
                                     charges[b])
            dq[b] = current
            dv[branch.i] -= current / self.oscillators[branch.i].c_p
            dv[branch.j] += current / self.oscillators[branch.j].c_p
        return np.concatenate([dv, dq])

    def simulate(self, t_end, dt=None, initial_voltages=None,
                 initial_phases=None, record_every=1):
        """Integrate the network; returns ``(Trajectory, phase_history)``.

        The trajectory's state layout is ``[v_0..v_{N-1}, q_0..q_{B-1}]``.
        ``phase_history`` is a list (one entry per recorded sample) of
        per-oscillator VO2 phase tuples.  ``dt`` defaults to 1/400 of the
        fastest oscillating member's analytic period.
        """
        n = self.num_oscillators
        if initial_phases is None:
            phases = [INSULATING] * n
        else:
            phases = list(initial_phases)
        if initial_voltages is None:
            # stagger starting points slightly so identical oscillators do
            # not ride a perfectly symmetric (measure-zero) trajectory
            initial_voltages = [
                osc.v_low + (0.45 + 0.02 * k) * (osc.v_high - osc.v_low)
                for k, osc in enumerate(self.oscillators)
            ]
        if dt is None:
            periods = [osc.analytic_period() for osc in self.oscillators
                       if osc.can_oscillate()]
            if not periods:
                raise OscillatorError(
                    "no member oscillates; pass dt explicitly")
            dt = min(periods) / 400.0
        state = np.concatenate([
            np.asarray(initial_voltages, dtype=float),
            np.zeros(len(self.branches)),
        ])
        times = [0.0]
        states = [state.copy()]
        phase_history = [tuple(phases)]
        t = 0.0
        step_index = 0
        while t < t_end - 1e-18:
            step = min(dt, t_end - t)
            k1 = self._derivatives(state, phases)
            k2 = self._derivatives(state + 0.5 * step * k1, phases)
            k3 = self._derivatives(state + 0.5 * step * k2, phases)
            k4 = self._derivatives(state + step * k3, phases)
            state = state + (step / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
            t += step
            step_index += 1
            for k, oscillator in enumerate(self.oscillators):
                device_voltage = oscillator.v_dd - state[k]
                phases[k] = oscillator.vo2.next_phase(phases[k],
                                                      device_voltage)
            if step_index % record_every == 0 or t >= t_end - 1e-18:
                times.append(t)
                states.append(state.copy())
                phase_history.append(tuple(phases))
        trajectory = Trajectory(np.asarray(times), np.asarray(states),
                                n_steps=step_index)
        return trajectory, phase_history


def coupled_pair(v_gs_1, v_gs_2, r_c=50e3, c_c=100e-12,
                 oscillator_kwargs=None):
    """Convenience constructor for the Fig. 3 / Fig. 4 two-oscillator cell."""
    oscillator_kwargs = dict(oscillator_kwargs or {})
    osc_1 = RelaxationOscillator(v_gs_1, **oscillator_kwargs)
    osc_2 = RelaxationOscillator(v_gs_2, **oscillator_kwargs)
    branch = CouplingBranch(0, 1, r_c=r_c, c_c=c_c)
    return CoupledOscillatorNetwork([osc_1, osc_2], [branch])


def simulate_pair(v_gs_1, v_gs_2, r_c=50e3, c_c=100e-12, cycles=60,
                  oscillator_kwargs=None, record_every=1):
    """Simulate a coupled pair for ~``cycles`` of the slower member.

    Returns ``(times, v1, v2)`` ready for the readout / locking analyses.
    """
    network = coupled_pair(v_gs_1, v_gs_2, r_c=r_c, c_c=c_c,
                           oscillator_kwargs=oscillator_kwargs)
    periods = [osc.analytic_period() for osc in network.oscillators]
    t_end = cycles * max(periods)
    trajectory, _phases = network.simulate(t_end, record_every=record_every)
    return trajectory.times, trajectory.component(0), trajectory.component(1)
