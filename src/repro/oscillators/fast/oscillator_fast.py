"""FAST corner detection using coupled-oscillator distance norms (Fig. 6).

Section III.B describes a two-step flow, reproduced here exactly:

1. **Distance step** -- the pixel under test is compared against its 16
   circle neighbours through the oscillator distance primitive.  The
   primitive reports a monotone measure of |difference| but not its sign
   ("the direction of the difference ... is not known and does not
   matter"), so a circle pixel is flagged when its measure exceeds the
   calibrated threshold level.
2. **False-positive rejection** -- a contiguous run of flagged pixels may
   mix brighter and darker neighbours (invisible to an unsigned metric).
   "we compare the adjacent pixels in the result set with each other to
   check if they are similar.  If any of the difference values are
   greater than two times the threshold, then we can classify the result
   set as a false positive."

Note the doubled comparison count the paper concedes: "we must do two
comparison steps instead of the one required for the baseline software
algorithm" -- the detector tracks primitive invocations so the power /
throughput models can charge for them.
"""

import numpy as np

from ...core import parallel, telemetry
from ...core import cache as result_cache
from ...core.resilience import jsonable
from ..distance import OscillatorDistanceUnit
from .bresenham import circle_intensities, interior_pixels


def _encode_block(value):
    corners, comparisons, pixels = value
    return {"corners": [[int(row), int(col)] for row, col in corners],
            "comparisons": int(comparisons), "pixels": int(pixels)}


def _decode_block(doc):
    return ([(int(row), int(col)) for row, col in doc["corners"]],
            int(doc["comparisons"]), int(doc["pixels"]))


def _detect_chunk(payload):
    """Worker entry point: segment-test one block of candidate pixels.

    Rebuilds the detector (and its distance unit) from config inside the
    worker; returns ``(corners, comparisons, pixels)`` for the block.
    """
    threshold, n, unit_config, image, pixels = payload
    detector = OscillatorFastDetector(
        threshold=threshold, n=n,
        distance_unit=OscillatorDistanceUnit(**unit_config))
    corners = [(row, col) for row, col in pixels
               if detector.is_corner(image, row, col)]
    return corners, detector._comparisons, len(pixels)


def _circular_runs(flags):
    """Maximal circular runs of True as (start, length) pairs."""
    flags = list(bool(f) for f in flags)
    size = len(flags)
    if all(flags):
        return [(0, size)]
    if not any(flags):
        return []
    runs = []
    # rotate so position 0 is False, making runs linear
    first_false = flags.index(False)
    rotated = flags[first_false:] + flags[:first_false]
    start = None
    for position, value in enumerate(rotated):
        if value and start is None:
            start = position
        elif not value and start is not None:
            runs.append(((start + first_false) % size, position - start))
            start = None
    if start is not None:
        runs.append(((start + first_false) % size, len(rotated) - start))
    return runs


class OscillatorFastDetector:
    """The Fig. 6 detector: oscillator distance step + rejection step.

    Parameters
    ----------
    threshold : float
        Intensity margin ``t`` (same meaning as the software detector).
    n : int
        Contiguity requirement.
    distance_unit : OscillatorDistanceUnit, optional
        The analog comparison primitive; a behavioral-mode unit with the
        calibrated Fig. 5 exponent is built by default.
    """

    def __init__(self, threshold=30.0, n=9, distance_unit=None):
        if not 1 <= n <= 16:
            raise ValueError("n must be in [1, 16]")
        self.threshold = float(threshold)
        self.n = int(n)
        self.distance_unit = distance_unit or OscillatorDistanceUnit()
        #: statistics of the last detect() call
        self.last_stats = {}
        self._comparisons = 0

    def _exceeds(self, intensity_a, intensity_b, margin):
        self._comparisons += 1
        return self.distance_unit.measure(intensity_a, intensity_b) \
            > self.distance_unit.measure_threshold(margin)

    def is_corner(self, image, row, col):
        """Run the two-step Fig. 6 test on one pixel."""
        center = float(np.asarray(image)[row, col])
        circle = circle_intensities(image, row, col)
        # step 1: unsigned distance test against the center pixel
        flagged = [self._exceeds(value, center, self.threshold)
                   for value in circle]
        candidate_runs = [run for run in _circular_runs(flagged)
                          if run[1] >= self.n]
        if not candidate_runs:
            return False
        # step 2: adjacent-similarity check inside each candidate run
        size = len(circle)
        for start, length in candidate_runs:
            consistent = True
            for offset in range(length - 1):
                a = circle[(start + offset) % size]
                b = circle[(start + offset + 1) % size]
                if self._exceeds(a, b, 2.0 * self.threshold):
                    consistent = False
                    break
            if consistent:
                return True
        return False

    def _cache_meta(self, image, sizes=None):
        """Cache fingerprint: detector knobs + image content hash."""
        meta = {"threshold": self.threshold, "n": self.n,
                "config": jsonable(self.distance_unit.config()),
                "image": result_cache.array_fingerprint(np.asarray(image))}
        if sizes is not None:
            meta["sizes"] = sizes
        return meta

    def detect(self, image, workers=None, chunk_size=None, timeout=None,
               retry=None, cache=None):
        """All corners of ``image``; records primitive-invocation stats.

        ``workers``/``chunk_size`` split the interior pixels into blocks
        scored on the parallel engine (image-patch scoring is pure, so
        the corner list is identical for every worker count); worker
        telemetry merges into the active registry at join.
        ``timeout``/``retry`` bound each block and re-dispatch failed
        ones before giving up.  ``cache`` (None / False / path /
        :class:`~repro.core.cache.ResultCache`) reuses detections
        content-addressed by the image pixels and the detector's knobs
        (deterministic workload, always cacheable); ``last_stats`` and
        the ``oscillator.fast.*`` counters replay on a hit.
        """
        self._comparisons = 0
        corners = []
        pixels = 0
        workers = parallel.resolve_workers(workers)
        resilient = timeout is not None or retry is not None
        with telemetry.span("oscillator.fast.detect") as detect_span:
            if workers == 1 and chunk_size is None and not resilient:
                spec = result_cache.spec_for(
                    cache, "oscillator-fast", self._cache_meta(image),
                    encode=_encode_block, decode=_decode_block)
                hit = False
                if spec is not None:
                    hit, value = spec.lookup()
                    if hit:
                        corners, self._comparisons, pixels = value
                if not hit:
                    for row, col in interior_pixels(image):
                        pixels += 1
                        if self.is_corner(image, row, col):
                            corners.append((row, col))
                    if spec is not None:
                        spec.store((corners, self._comparisons, pixels))
            else:
                meta_image = image
                image = np.asarray(image, dtype=float)
                chunks = parallel.chunk_list(list(interior_pixels(image)),
                                             chunk_size)
                spec = result_cache.spec_for(
                    cache, "oscillator-fast-chunk",
                    self._cache_meta(meta_image,
                                     sizes=[len(c) for c in chunks]),
                    encode=_encode_block, decode=_decode_block)
                unit_config = self.distance_unit.config()
                tasks = [(self.threshold, self.n, unit_config, image,
                          chunk) for chunk in chunks]
                blocks = parallel.ParallelMap(
                    workers=workers, timeout=timeout).map(
                    _detect_chunk, tasks, retry=retry, cache=spec)
                for block_corners, comparisons, block_pixels in blocks:
                    corners.extend(block_corners)
                    self._comparisons += comparisons
                    pixels += block_pixels
            detect_span.set_attr("pixels", pixels)
            detect_span.set_attr("corners", len(corners))
            detect_span.set_attr("comparisons", self._comparisons)
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter("oscillator.fast.detections").inc()
            registry.counter("oscillator.fast.pixels").inc(pixels)
            registry.counter("oscillator.fast.comparisons").inc(
                self._comparisons)
            registry.counter("oscillator.fast.corners").inc(len(corners))
        self.last_stats = {
            "pixels": pixels,
            "oscillator_comparisons": self._comparisons,
            "comparisons_per_pixel": self._comparisons / max(1, pixels),
            "corners": len(corners),
        }
        return corners


def agreement(corners_a, corners_b, tolerance=1):
    """Precision/recall of detector A against reference detector B.

    A detection matches when a reference corner lies within Chebyshev
    distance ``tolerance``.  Returns a dict with precision, recall and the
    raw match counts.
    """
    def matches(point, reference_set):
        row, col = point
        return any(max(abs(row - r), abs(col - c)) <= tolerance
                   for r, c in reference_set)

    set_b = list(corners_b)
    true_positives = sum(1 for corner in corners_a if matches(corner, set_b))
    precision = true_positives / len(corners_a) if corners_a else 1.0
    recovered = sum(1 for corner in set_b if matches(corner, corners_a))
    recall = recovered / len(set_b) if set_b else 1.0
    return {
        "precision": precision,
        "recall": recall,
        "detected": len(corners_a),
        "reference": len(set_b),
        "matched": true_positives,
    }
