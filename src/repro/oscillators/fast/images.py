"""Synthetic test images with ground-truth corners.

The paper's corner-detection demonstration needs controlled inputs; with
no image dataset available offline, these generators produce the classic
corner-detector test scenes: axis-aligned rectangles (4 known corners),
right triangles, checkerboards (dense interior corners), and featureless
gradients (false-positive probes), plus additive noise.
"""

import numpy as np

from ...core.rngs import make_rng


def rectangle_image(height=48, width=48, top=12, left=12, bottom=36,
                    right=36, background=40, foreground=200):
    """A bright rectangle on a dark background.

    Returns ``(image, corners)`` where ``corners`` is the list of the four
    ground-truth corner pixel coordinates ``(row, col)`` (the rectangle's
    corner pixels themselves).
    """
    if not (0 < top < bottom < height and 0 < left < right < width):
        raise ValueError("rectangle does not fit in the image")
    image = np.full((height, width), float(background))
    image[top:bottom, left:right] = float(foreground)
    corners = [(top, left), (top, right - 1),
               (bottom - 1, left), (bottom - 1, right - 1)]
    return image, corners


def triangle_image(height=48, width=48, background=40, foreground=200):
    """A bright axis-aligned right triangle; returns ``(image, corners)``.

    The right-angle vertex and the two acute vertices are the ground
    truth (acute vertices are harder; detectors typically find the right
    angle reliably).
    """
    image = np.full((height, width), float(background))
    apex_row, apex_col = height // 4, width // 4
    size = height // 2
    for offset in range(size):
        row = apex_row + offset
        image[row, apex_col:apex_col + offset + 1] = float(foreground)
    corners = [(apex_row, apex_col),
               (apex_row + size - 1, apex_col),
               (apex_row + size - 1, apex_col + size - 1)]
    return image, corners


def checkerboard_image(height=48, width=48, square=8, low=40, high=200):
    """A checkerboard; returns ``(image, corners)`` with interior crossings."""
    rows = np.arange(height) // square
    cols = np.arange(width) // square
    pattern = (rows[:, None] + cols[None, :]) % 2
    image = np.where(pattern == 0, float(low), float(high))
    corners = []
    for row in range(square, height - square + 1, square):
        for col in range(square, width - square + 1, square):
            if 3 <= row < height - 3 and 3 <= col < width - 3:
                corners.append((row, col))
    return image, corners


def gradient_image(height=48, width=48, low=30, high=220):
    """A smooth horizontal ramp: contains no corners at all.

    Used as the false-positive probe -- any detection here is spurious.
    """
    ramp = np.linspace(low, high, width)
    return np.tile(ramp, (height, 1))


def add_noise(image, sigma, rng=None, clip=(0.0, 255.0)):
    """Additive Gaussian noise, clipped to the valid intensity range."""
    rng = make_rng(rng)
    noisy = np.asarray(image, dtype=float) + rng.normal(0.0, sigma,
                                                        np.shape(image))
    return np.clip(noisy, clip[0], clip[1])
