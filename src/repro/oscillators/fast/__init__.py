"""FAST corner detection on coupled-oscillator distance norms (Fig. 6).

* :mod:`repro.oscillators.fast.bresenham` -- the radius-3 circle offsets.
* :mod:`repro.oscillators.fast.images` -- synthetic test images with
  ground-truth corners.
* :mod:`repro.oscillators.fast.software` -- the reference CMOS/software
  FAST-16 segment-test detector (the paper's baseline).
* :mod:`repro.oscillators.fast.oscillator_fast` -- the two-step
  oscillator-norm detector with false-positive rejection.
"""

from .bresenham import CIRCLE_OFFSETS_R3, circle_intensities
from .images import (
    add_noise,
    checkerboard_image,
    gradient_image,
    rectangle_image,
    triangle_image,
)
from .oscillator_fast import OscillatorFastDetector
from .software import SoftwareFastDetector, segment_test

__all__ = [
    "CIRCLE_OFFSETS_R3",
    "circle_intensities",
    "add_noise",
    "checkerboard_image",
    "gradient_image",
    "rectangle_image",
    "triangle_image",
    "OscillatorFastDetector",
    "SoftwareFastDetector",
    "segment_test",
]
