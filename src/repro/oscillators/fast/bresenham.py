"""Bresenham circle of radius 3: the FAST-16 sampling pattern.

"The FAST corner detection algorithm compares a pixel with its
surrounding 16 pixels on a Bresenham circle of radius 3."  The offsets
below are the standard 16-point pattern in clockwise order starting from
the top, as (row, col) displacements.
"""

import numpy as np

#: The 16 (d_row, d_col) offsets of the radius-3 Bresenham circle,
#: clockwise from 12 o'clock.
CIRCLE_OFFSETS_R3 = (
    (-3, 0), (-3, 1), (-2, 2), (-1, 3),
    (0, 3), (1, 3), (2, 2), (3, 1),
    (3, 0), (3, -1), (2, -2), (1, -3),
    (0, -3), (-1, -3), (-2, -2), (-3, -1),
)


def circle_intensities(image, row, col):
    """The 16 circle-pixel intensities around ``(row, col)``.

    The caller must keep a 3-pixel border margin; out-of-range access
    raises ``IndexError`` like any other out-of-bounds numpy access.
    """
    image = np.asarray(image)
    return np.array([image[row + dr, col + dc]
                     for dr, dc in CIRCLE_OFFSETS_R3], dtype=float)


def interior_pixels(image):
    """Iterate (row, col) of every pixel with the full circle in range."""
    height, width = np.asarray(image).shape
    for row in range(3, height - 3):
        for col in range(3, width - 3):
            yield row, col
