"""Reference software FAST-16 detector (the paper's CMOS baseline).

Rosten & Drummond's segment test: a pixel is a corner when at least ``n``
contiguous pixels on its radius-3 Bresenham circle are all brighter than
``p + threshold`` or all darker than ``p - threshold``.  This is the
"baseline software algorithm" Section III.B compares the oscillator
implementation against (one comparison step, direction known).
"""

import numpy as np

from .bresenham import circle_intensities, interior_pixels


def _max_circular_run(flags):
    """Longest circular run of True in a 16-element boolean array."""
    flags = np.asarray(flags, dtype=bool)
    if flags.all():
        return len(flags)
    if not flags.any():
        return 0
    # unroll the circle twice and measure the longest linear run
    doubled = np.concatenate([flags, flags])
    best = 0
    run = 0
    for value in doubled:
        if value:
            run += 1
            best = max(best, run)
        else:
            run = 0
    return min(best, len(flags))


def segment_test(center, circle, threshold, n=12):
    """The FAST segment test for one pixel.

    Parameters
    ----------
    center : float
        Intensity of the pixel under test.
    circle : array-like of 16 floats
        Intensities on the Bresenham circle (clockwise).
    threshold : float
        Brightness margin ``t``.
    n : int
        Required contiguous count (the paper's ``N``).

    Returns
    -------
    (is_corner, kind) : (bool, str or None)
        ``kind`` is "brighter" or "darker" when detected.
    """
    circle = np.asarray(circle, dtype=float)
    brighter = circle > center + threshold
    darker = circle < center - threshold
    if _max_circular_run(brighter) >= n:
        return True, "brighter"
    if _max_circular_run(darker) >= n:
        return True, "darker"
    return False, None


class SoftwareFastDetector:
    """Image-level FAST-16 detector with the optional high-speed pretest.

    Parameters
    ----------
    threshold : float
        Intensity margin ``t``.
    n : int
        Contiguity requirement (9..16; the original FAST uses 12).
    use_high_speed_test : bool
        Apply Rosten's 4-pixel rejection pretest (positions 1, 5, 9, 13)
        before the full segment test; valid only for ``n >= 12``.
    """

    def __init__(self, threshold=30.0, n=9, use_high_speed_test=True):
        if not 1 <= n <= 16:
            raise ValueError("n must be in [1, 16]")
        self.threshold = float(threshold)
        self.n = int(n)
        self.use_high_speed_test = bool(use_high_speed_test) and n >= 12
        #: statistics of the last detect() call
        self.last_stats = {}

    def _high_speed_reject(self, center, circle):
        compass = circle[[0, 4, 8, 12]]
        brighter = np.sum(compass > center + self.threshold)
        darker = np.sum(compass < center - self.threshold)
        return brighter < 3 and darker < 3

    def is_corner(self, image, row, col):
        """Segment-test one pixel of an image."""
        center = float(np.asarray(image)[row, col])
        circle = circle_intensities(image, row, col)
        if self.use_high_speed_test and self._high_speed_reject(center,
                                                                circle):
            return False
        detected, _kind = segment_test(center, circle, self.threshold,
                                       n=self.n)
        return detected

    def detect(self, image):
        """All corner pixels of ``image`` as a list of (row, col).

        Also records comparison-count statistics in ``last_stats`` for the
        power/throughput models.
        """
        corners = []
        pixels = 0
        full_tests = 0
        for row, col in interior_pixels(image):
            pixels += 1
            center = float(np.asarray(image)[row, col])
            circle = circle_intensities(image, row, col)
            if self.use_high_speed_test and self._high_speed_reject(center,
                                                                    circle):
                continue
            full_tests += 1
            detected, _kind = segment_test(center, circle, self.threshold,
                                           n=self.n)
            if detected:
                corners.append((row, col))
        self.last_stats = {
            "pixels": pixels,
            "full_segment_tests": full_tests,
            "corners": len(corners),
        }
        return corners
