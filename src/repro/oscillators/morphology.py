"""Morphological image processing on oscillator primitives (cited [43]).

Section III credits coupled oscillator arrays with "morphological image
processing [43]" (Shukla et al., VLSI Technology 2016).  Grayscale
morphology is rank-order filtering -- erosion is the neighbourhood
minimum, dilation the maximum, median filtering the middle rank -- and
rank ordering is exactly what the oscillator co-processor provides: a
pixel value encoded on the Vgs dial produces spikes at a rate monotone
in the value, so the extreme spike counts in a neighbourhood identify
the extreme pixels.

Two operating modes, mirroring :class:`OscillatorDistanceUnit`:

* ``behavioral`` (default) -- uses the *analytic* frequency transfer of
  the 1T1R cell (:meth:`RelaxationOscillator.natural_frequency`) to rank
  neighbourhood pixels; exact and fast, still entirely derived from the
  device model.
* ``physical`` -- ranks by spike counting on simulated waveforms
  (:func:`repro.oscillators.coprocessor.rank_order_sort`); slow, used by
  integration tests.

Also provided: :func:`edge_map`, the distance-primitive edge detector
(mean XOR-measure against the 4-neighbourhood) that [43]-style arrays
use as a pre-processing stage.
"""

import numpy as np

from ..core.exceptions import OscillatorError
from .coprocessor import rank_order_sort, value_to_v_gs
from .distance import OscillatorDistanceUnit
from .relaxation import RelaxationOscillator


def _neighbourhood(image, row, col, radius):
    return image[row - radius:row + radius + 1,
                 col - radius:col + radius + 1].ravel()


class OscillatorRankFilter:
    """Rank-order filter built on oscillator frequency ordering.

    Parameters
    ----------
    mode : str
        ``"behavioral"`` or ``"physical"``.
    radius : int
        Square structuring element half-width (radius 1 = 3x3).
    intensity_scale : float
        Input full scale (255 for 8-bit images).
    window_cycles : float
        Physical-mode spike-count window (the accuracy dial).
    """

    def __init__(self, mode="behavioral", radius=1, intensity_scale=255.0,
                 window_cycles=40.0):
        if mode not in ("behavioral", "physical"):
            raise OscillatorError("mode must be 'behavioral' or 'physical'")
        if radius < 1:
            raise OscillatorError("radius must be >= 1")
        self.mode = mode
        self.radius = int(radius)
        self.intensity_scale = float(intensity_scale)
        self.window_cycles = float(window_cycles)

    def _rank_indices(self, values):
        """Ascending order of ``values`` through the oscillator encoding."""
        if self.mode == "physical":
            order, _counts = rank_order_sort(
                values, full_scale=self.intensity_scale,
                window_cycles=self.window_cycles)
            return order
        frequencies = []
        for value in values:
            v_gs = value_to_v_gs(float(value), self.intensity_scale)
            frequencies.append(
                RelaxationOscillator(v_gs).natural_frequency())
        return sorted(range(len(values)), key=lambda i: frequencies[i])

    def _apply(self, image, rank_selector):
        image = np.asarray(image, dtype=float)
        if image.ndim != 2:
            raise OscillatorError("expected a 2-D grayscale image")
        radius = self.radius
        if min(image.shape) < 2 * radius + 1:
            raise OscillatorError("image smaller than the structuring "
                                  "element")
        output = image.copy()
        for row in range(radius, image.shape[0] - radius):
            for col in range(radius, image.shape[1] - radius):
                values = _neighbourhood(image, row, col, radius)
                order = self._rank_indices(values)
                output[row, col] = values[rank_selector(order)]
        return output

    def erode(self, image):
        """Grayscale erosion: neighbourhood minimum via lowest rank."""
        return self._apply(image, lambda order: order[0])

    def dilate(self, image):
        """Grayscale dilation: neighbourhood maximum via highest rank."""
        return self._apply(image, lambda order: order[-1])

    def median(self, image):
        """Median filter: the middle rank (salt-and-pepper removal)."""
        return self._apply(image, lambda order: order[len(order) // 2])

    def opening(self, image):
        """Erosion then dilation (removes bright specks)."""
        return self.dilate(self.erode(image))

    def closing(self, image):
        """Dilation then erosion (fills dark pits)."""
        return self.erode(self.dilate(image))

    def morphological_gradient(self, image):
        """Dilation minus erosion: a thick edge map."""
        return self.dilate(image) - self.erode(image)


def edge_map(image, distance_unit=None):
    """Distance-primitive edge strength: mean measure to 4-neighbours.

    Each pixel is compared with its von-Neumann neighbours through the
    oscillator distance primitive; flat regions read ~0 and intensity
    steps read high -- the oscillator-array edge detector of [43].
    Border pixels are 0.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise OscillatorError("expected a 2-D grayscale image")
    unit = distance_unit or OscillatorDistanceUnit()
    output = np.zeros_like(image)
    for row in range(1, image.shape[0] - 1):
        for col in range(1, image.shape[1] - 1):
            center = image[row, col]
            neighbours = (image[row - 1, col], image[row + 1, col],
                          image[row, col - 1], image[row, col + 1])
            output[row, col] = float(np.mean(
                [unit.measure(center, value) for value in neighbours]))
    return output
