"""Vanadium dioxide (VO2) insulator-metal-transition device model.

Section III.A: "VO2 undergoes a volatile and sharp Insulator-to-Metal
Phase Transition (IMT) with an applied electrical bias.  When a resistor
is connected in series with the VO2 such that the load line passes
through the unstable regions of the hysteretic I-V curve, it enables
continuous relaxation oscillations."

The model is the standard compact abstraction used in the coupled-
oscillator literature (Shukla et al., IEDM 2014): a two-state resistor
with hysteretic switching thresholds,

* insulating phase: resistance ``r_ins`` until the voltage across the
  device exceeds ``v_imt`` (insulator -> metal transition),
* metallic phase: resistance ``r_met`` until the device voltage falls
  below ``v_mit`` (metal -> insulator transition), with
  ``v_mit < v_imt`` (hysteresis window).

Switching is treated as instantaneous relative to the RC time scales of
the oscillator, which is the regime the paper's devices operate in.
"""

from ..core.exceptions import DeviceModelError

#: Discrete phases of the device.
INSULATING = "insulating"
METALLIC = "metallic"


class Vo2Device:
    """A hysteretic two-state VO2 resistor.

    Parameters
    ----------
    r_ins : float
        Insulating-phase resistance in ohms (large).
    r_met : float
        Metallic-phase resistance in ohms (small).
    v_imt : float
        Device voltage triggering the insulator->metal transition, volts.
    v_mit : float
        Device voltage triggering the metal->insulator transition, volts.
        Must satisfy ``0 < v_mit < v_imt``.

    Default values follow published hybrid VO2/MOSFET oscillator
    parameters (r_ins ~ 100 kOhm, r_met ~ 1-5 kOhm, transition voltages
    around one volt with a few-hundred-mV hysteresis window).
    """

    def __init__(self, r_ins=100e3, r_met=2e3, v_imt=1.1, v_mit=0.5):
        if r_ins <= r_met:
            raise DeviceModelError(
                "insulating resistance (%g) must exceed metallic (%g)"
                % (r_ins, r_met)
            )
        if r_met <= 0:
            raise DeviceModelError("metallic resistance must be positive")
        if not 0.0 < v_mit < v_imt:
            raise DeviceModelError(
                "need 0 < v_mit (%g) < v_imt (%g) for hysteresis"
                % (v_mit, v_imt)
            )
        self.r_ins = float(r_ins)
        self.r_met = float(r_met)
        self.v_imt = float(v_imt)
        self.v_mit = float(v_mit)

    def resistance(self, phase):
        """Resistance in the given discrete phase."""
        if phase == INSULATING:
            return self.r_ins
        if phase == METALLIC:
            return self.r_met
        raise DeviceModelError("unknown VO2 phase %r" % phase)

    def conductance(self, phase):
        """Conductance in the given discrete phase."""
        return 1.0 / self.resistance(phase)

    def next_phase(self, phase, device_voltage):
        """Phase after observing ``device_voltage`` across the device.

        Implements the hysteresis: an insulating device switches metallic
        above ``v_imt``; a metallic device switches insulating below
        ``v_mit``; otherwise the phase persists.
        """
        if phase == INSULATING and device_voltage >= self.v_imt:
            return METALLIC
        if phase == METALLIC and device_voltage <= self.v_mit:
            return INSULATING
        if phase not in (INSULATING, METALLIC):
            raise DeviceModelError("unknown VO2 phase %r" % phase)
        return phase

    def current(self, phase, device_voltage):
        """Ohmic current through the device in the given phase."""
        return device_voltage / self.resistance(phase)

    def iv_curve(self, voltages):
        """Quasi-static hysteretic I-V sweep (up then down).

        Returns ``(up_currents, down_currents)`` for the given ascending
        voltage array: the up sweep starts insulating, the down sweep
        starts from the final up-sweep phase.  Used to visualize the
        "unstable region" the series load line must cross.
        """
        phase = INSULATING
        up = []
        for v in voltages:
            phase = self.next_phase(phase, v)
            up.append(self.current(phase, v))
        down = []
        for v in reversed(list(voltages)):
            phase = self.next_phase(phase, v)
            down.append(self.current(phase, v))
        down.reverse()
        return up, down

    def __repr__(self):
        return ("Vo2Device(r_ins=%g, r_met=%g, v_imt=%g, v_mit=%g)"
                % (self.r_ins, self.r_met, self.v_imt, self.v_mit))
