"""Frequency-locking analysis for coupled oscillator pairs (Fig. 3).

"when the frequencies of two coupled oscillators are sufficiently close
to each other the coupling elements facilitate frequency locking."

This module measures that behaviour on the simulator: per-pair locking
checks, the locking range as a function of coupling strength (the Arnold
tongue), and the Fig. 3-style frequency-versus-detuning characteristic
showing the locked plateau.
"""

import numpy as np

from ..core import telemetry
from ..core.signals import cycle_frequency
from .coupling import coupled_pair

#: Default simulation protocol calibrated in DESIGN.md: coupling capacitor
#: 30 pF, ~150 cycles with the first 60 % discarded, staggered initial
#: phases so the pair relaxes into its anti-phase attractor.
DEFAULT_C_C = 30e-12
DEFAULT_CYCLES = 150
DEFAULT_THRESHOLD = 1.0


def _staggered_initials(network):
    low = network.oscillators[0].v_low
    swing = network.oscillators[0].v_high - low
    return [low + 0.45 * swing, low + 0.70 * swing]


def simulate_calibrated_pair(v_gs_1, v_gs_2, r_c, c_c=DEFAULT_C_C,
                             cycles=DEFAULT_CYCLES, oscillator_kwargs=None):
    """Simulate a pair under the calibrated readout protocol.

    Returns ``(times, v1, v2)``.
    """
    network = coupled_pair(v_gs_1, v_gs_2, r_c=r_c, c_c=c_c,
                           oscillator_kwargs=oscillator_kwargs)
    period = max(osc.analytic_period() for osc in network.oscillators)
    trajectory, _phases = network.simulate(
        cycles * period, initial_voltages=_staggered_initials(network))
    return (trajectory.times, trajectory.component(0),
            trajectory.component(1))


class LockingResult:
    """Outcome of a pairwise locking measurement.

    Attributes
    ----------
    locked : bool
        True when steady-state cycle frequencies agree within ``rel_tol``.
    freq_1, freq_2 : float or None
        Steady-state frequencies of the two oscillators.
    uncoupled_freq_1, uncoupled_freq_2 : float
        Analytic free-running frequencies of the members.
    """

    def __init__(self, locked, freq_1, freq_2, uncoupled_freq_1,
                 uncoupled_freq_2):
        self.locked = bool(locked)
        self.freq_1 = freq_1
        self.freq_2 = freq_2
        self.uncoupled_freq_1 = uncoupled_freq_1
        self.uncoupled_freq_2 = uncoupled_freq_2

    @property
    def frequency_pull(self):
        """How far the locked frequency moved from the mean natural one."""
        if self.freq_1 is None:
            return None
        natural_mean = 0.5 * (self.uncoupled_freq_1 + self.uncoupled_freq_2)
        return self.freq_1 - natural_mean

    def __repr__(self):
        return "LockingResult(locked=%s, f1=%s, f2=%s)" % (
            self.locked, self.freq_1, self.freq_2)


def check_locking(v_gs_1, v_gs_2, r_c, c_c=DEFAULT_C_C, cycles=DEFAULT_CYCLES,
                  rel_tol=0.01, oscillator_kwargs=None):
    """Measure whether a pair locks; returns a :class:`LockingResult`."""
    from .relaxation import RelaxationOscillator

    kwargs = dict(oscillator_kwargs or {})
    registry = telemetry.get_registry()
    with telemetry.span("oscillator.locking.check",
                        delta_v_gs=abs(v_gs_2 - v_gs_1)) as check_span:
        natural_1 = RelaxationOscillator(v_gs_1, **kwargs).natural_frequency()
        natural_2 = RelaxationOscillator(v_gs_2, **kwargs).natural_frequency()
        times, v_1, v_2 = simulate_calibrated_pair(
            v_gs_1, v_gs_2, r_c, c_c=c_c, cycles=cycles,
            oscillator_kwargs=oscillator_kwargs)
        half = len(times) // 2
        freq_1 = cycle_frequency(times[half:], v_1[half:], DEFAULT_THRESHOLD)
        freq_2 = cycle_frequency(times[half:], v_2[half:], DEFAULT_THRESHOLD)
        locked = (freq_1 is not None and freq_2 is not None
                  and abs(freq_1 - freq_2) <= rel_tol * max(freq_1, freq_2))
        check_span.set_attr("locked", locked)
    if registry.enabled:
        registry.counter("oscillator.locking.checks").inc()
        registry.counter("oscillator.locking.locked"
                         if locked else "oscillator.locking.unlocked").inc()
    return LockingResult(locked, freq_1, freq_2, natural_1, natural_2)


def locking_curve(base_v_gs, delta_v_gs_values, r_c, c_c=DEFAULT_C_C,
                  cycles=DEFAULT_CYCLES, oscillator_kwargs=None):
    """Fig. 3 characteristic: coupled frequencies across a detuning sweep.

    Returns a list of dicts with the detuning, both coupled frequencies,
    both natural frequencies, and the locked flag -- inside the locking
    range the two coupled frequencies collapse onto one plateau.
    """
    rows = []
    for delta in delta_v_gs_values:
        result = check_locking(base_v_gs, base_v_gs + delta, r_c, c_c=c_c,
                               cycles=cycles,
                               oscillator_kwargs=oscillator_kwargs)
        rows.append({
            "delta_v_gs": float(delta),
            "locked": result.locked,
            "coupled_freq_1": result.freq_1,
            "coupled_freq_2": result.freq_2,
            "natural_freq_1": result.uncoupled_freq_1,
            "natural_freq_2": result.uncoupled_freq_2,
        })
    return rows


def locking_range(base_v_gs, r_c, c_c=DEFAULT_C_C, max_delta=0.5, steps=12,
                  cycles=DEFAULT_CYCLES, oscillator_kwargs=None):
    """Largest detuning (in volts of delta V_gs) that still locks.

    Scans detunings upward and returns the last locked value before the
    first unlocked one (0.0 when even the smallest step unlocks).
    """
    deltas = np.linspace(max_delta / steps, max_delta, steps)
    last_locked = 0.0
    for delta in deltas:
        result = check_locking(base_v_gs, base_v_gs + delta, r_c, c_c=c_c,
                               cycles=cycles,
                               oscillator_kwargs=oscillator_kwargs)
        if not result.locked:
            break
        last_locked = float(delta)
    return last_locked


def arnold_tongue(base_v_gs, r_c_values, max_delta=0.4, steps=10,
                  c_c=DEFAULT_C_C, cycles=DEFAULT_CYCLES,
                  oscillator_kwargs=None):
    """Locking range per coupling strength: the Arnold-tongue boundary.

    Returns a list of ``(r_c, locking_range)`` pairs; stronger coupling
    (smaller r_c) is expected to lock over a wider detuning range.
    """
    return [
        (float(r_c), locking_range(base_v_gs, r_c, c_c=c_c,
                                   max_delta=max_delta, steps=steps,
                                   cycles=cycles,
                                   oscillator_kwargs=oscillator_kwargs))
        for r_c in r_c_values
    ]
