"""Thresholded, time-averaged XOR readout (Fig. 4).

"we designed an XOR-based readout that takes synchronized waveforms as
its input and performs a threshold-XOR operation to be time-averaged over
a certain number of cycles to provide a stable output value."

Pipeline per Fig. 4: each oscillator node voltage passes through a
comparator (threshold), the two square waves feed an XOR, and the XOR
output is averaged over the observation window.  The reported figure of
merit is ``1 - Avg(XOR)``: minimal when the pair locks in anti-phase
(identical inputs) and growing with input difference -- the l_k distance
measure of Fig. 5.

The comparator auto-zeroes at the waveform median (duty-cycle 0.5), which
is what makes anti-phase locking read as ``Avg(XOR) ~ 1``; a fixed
mid-rail threshold is also supported.
"""

import numpy as np

from ..core.exceptions import ReadoutError
from ..core.signals import time_average


class XorReadout:
    """Comparator + XOR + time-average readout block.

    Parameters
    ----------
    threshold : float or "median"
        Comparator threshold.  ``"median"`` (default) self-calibrates per
        waveform to its median, i.e. a 50 % duty-cycle slicer.
    discard_fraction : float
        Fraction of the record discarded from the front to skip the
        locking transient before averaging.
    """

    def __init__(self, threshold="median", discard_fraction=0.6):
        if not 0.0 <= discard_fraction < 1.0:
            raise ReadoutError("discard_fraction must be in [0, 1)")
        self.threshold = threshold
        self.discard_fraction = float(discard_fraction)

    def _slice(self, values, times):
        start = int(len(times) * self.discard_fraction)
        if len(times) - start < 16:
            raise ReadoutError(
                "readout window too short: %d samples after transient "
                "discard" % (len(times) - start)
            )
        return times[start:], values[..., start:]

    def _threshold_for(self, values):
        if self.threshold == "median":
            return float(np.median(values))
        return float(self.threshold)

    def square_waves(self, times, v_1, v_2):
        """Comparator outputs on the steady-state window.

        Returns ``(window_times, square_1, square_2)``.
        """
        times = np.asarray(times, dtype=float)
        stacked = np.vstack([np.asarray(v_1, dtype=float),
                             np.asarray(v_2, dtype=float)])
        window_times, window = self._slice(stacked, times)
        square_1 = (window[0] > self._threshold_for(window[0])).astype(float)
        square_2 = (window[1] > self._threshold_for(window[1])).astype(float)
        return window_times, square_1, square_2

    def average_xor(self, times, v_1, v_2):
        """Time-averaged XOR of the two thresholded waveforms."""
        window_times, square_1, square_2 = self.square_waves(times, v_1, v_2)
        return time_average(window_times, np.abs(square_1 - square_2))

    def measure(self, times, v_1, v_2):
        """The paper's figure of merit ``1 - Avg(XOR)``.

        Near zero for an anti-phase-locked identical pair; grows with the
        input difference following the l_k shapes of Fig. 5.
        """
        return 1.0 - self.average_xor(times, v_1, v_2)
