"""Power models: oscillator corner-detect block vs 32 nm CMOS (Section III.B).

The paper's quantitative claim: "The power consumption of the coupled
oscillator-based block designed in this example to identify corners is
0.936 mW (including the XOR readout), whereas the power consumption of
the corresponding CMOS implementation at the 32 nm process node is 3 mW."

Both sides are modelled from first principles with documented constants;
the claim to reproduce is the *ratio* (~3.2x in favour of the
oscillators), not the third decimal.

**Oscillator block.**  Average supply power of one oscillator is computed
from the simulated (or analytic piecewise-exponential) waveform:
``P = V_dd * <I_supply>`` with ``I_supply = (V_dd - v) / R_vo2(phase)``.
The corner-detect block holds one comparison unit per circle pixel: 16
coupled pairs = 32 oscillators, plus the XOR readout electronics.  Device
impedances are scaled up (capacitances down) by ``impedance_scale``
relative to the analysis-grade parameters used elsewhere in the package;
the scaling leaves every voltage waveform and locking property invariant
(R*C products unchanged) while dividing current draw -- exactly how a
low-power design point is reached in practice.

**CMOS block.**  A 16-lane comparison datapath at 32 nm: per-lane
subtract/abs/compare energy anchored to published per-op energies
(Horowitz, ISSCC'14 scaled 45->32 nm), line-buffer SRAM accesses, window
shift registers, run-length (contiguity) logic, clock-tree overhead, and
leakage.  Defaults give ~3 mW at 850 MHz pixel rate.
"""

import math

from ..core.exceptions import OscillatorError
from .relaxation import RelaxationOscillator
from .transistor import SeriesTransistor
from .vo2 import INSULATING, METALLIC, Vo2Device


def scaled_oscillator(v_gs=1.8, impedance_scale=1.68, v_dd=1.8):
    """Build the low-power design point of the relaxation oscillator.

    Multiplies every resistance by ``impedance_scale`` and divides every
    capacitance by the same factor: time constants, waveforms, locking
    behaviour and norm exponents are unchanged (the node ODE is invariant
    under this scaling), while all currents -- and hence power -- drop by
    the factor.
    """
    if impedance_scale <= 0:
        raise OscillatorError("impedance_scale must be positive")
    vo2 = Vo2Device(r_ins=100e3 * impedance_scale,
                    r_met=2e3 * impedance_scale)
    transistor = SeriesTransistor(k_n=2e-5 / impedance_scale)
    return RelaxationOscillator(v_gs, vo2=vo2, transistor=transistor,
                                v_dd=v_dd, c_p=100e-12 / impedance_scale)


def oscillator_average_power(oscillator):
    """Average supply power of one free-running oscillator, watts.

    Uses the closed-form piecewise-exponential waveform: in each phase the
    node voltage relaxes exponentially between the switching levels, and
    the supply current is ``(v_dd - v) / R_vo2``; the time integral of an
    exponential segment has a closed form, so no simulation is needed.
    """
    if not oscillator.can_oscillate():
        raise OscillatorError("bias point does not oscillate")
    v_dd = oscillator.v_dd
    total_charge = 0.0
    total_time = 0.0
    segments = (
        (INSULATING, oscillator.v_high, oscillator.v_low),
        (METALLIC, oscillator.v_low, oscillator.v_high),
    )
    for phase, v_start, v_end in segments:
        tau = oscillator.time_constant(phase)
        v_inf = oscillator.equilibrium_voltage(phase)
        r_vo2 = oscillator.vo2.resistance(phase)
        duration = tau * math.log((v_start - v_inf) / (v_end - v_inf)) \
            if v_start > v_inf else \
            tau * math.log((v_inf - v_start) / (v_inf - v_end))
        # integral of (v_dd - v(t))/R dt over the segment, with
        # v(t) = v_inf + (v_start - v_inf) exp(-t/tau)
        dc_part = (v_dd - v_inf) * duration
        exp_part = (v_start - v_inf) * tau \
            * (1.0 - math.exp(-duration / tau))
        total_charge += (dc_part - exp_part) / r_vo2
        total_time += duration
    average_current = total_charge / total_time
    return v_dd * average_current


class OscillatorBlockPower:
    """Power of the Fig. 6 oscillator corner-detection block.

    Parameters
    ----------
    num_pairs : int
        Comparison units (one per circle pixel; FAST-16 needs 16).
    v_gs : float
        Operating gate bias of the oscillators.
    impedance_scale : float
        Low-power impedance scaling (see :func:`scaled_oscillator`).
    readout_power_per_unit : float
        Power of one XOR readout slice (two comparators, one XOR, one
        averaging counter) in watts.  Sized from C*V^2*f switching of a
        handful of gates at the oscillation frequency plus comparator
        static bias (~2 uW), dominated by the comparators.
    """

    def __init__(self, num_pairs=16, v_gs=1.8, impedance_scale=1.68,
                 readout_power_per_unit=2e-6):
        self.num_pairs = int(num_pairs)
        self.v_gs = float(v_gs)
        self.impedance_scale = float(impedance_scale)
        self.readout_power_per_unit = float(readout_power_per_unit)

    def breakdown(self):
        """Component-wise power in watts."""
        oscillator = scaled_oscillator(v_gs=self.v_gs,
                                       impedance_scale=self.impedance_scale)
        per_oscillator = oscillator_average_power(oscillator)
        oscillator_total = 2 * self.num_pairs * per_oscillator
        readout_total = self.num_pairs * self.readout_power_per_unit
        return {
            "per_oscillator_w": per_oscillator,
            "oscillators_w": oscillator_total,
            "xor_readout_w": readout_total,
            "total_w": oscillator_total + readout_total,
        }

    def total_power(self):
        """Block power in watts (including the XOR readout)."""
        return self.breakdown()["total_w"]


class CmosFastPower:
    """Power of the equivalent 32 nm CMOS comparison block.

    All constants are per-operation energies in joules at the 32 nm node,
    anchored to Horowitz's ISSCC 2014 energy table (45 nm) scaled by one
    process generation (~0.8x) and a 0.9 V supply:

    * 8-bit add/subtract  ~ 0.025 pJ
    * 8-bit compare/abs   ~ 0.015 pJ each
    * register bit        ~ 2 fJ per clocked bit
    * small SRAM read (8b)~ 0.15 pJ (line buffers)

    The block mirrors the oscillator unit's function: 16 comparison lanes
    (subtract + abs + compare against threshold), a 3-line pixel buffer,
    the 7x7 window shift registers, and run-length contiguity logic, all
    clocked at ``pixel_rate_hz`` (one pixel per cycle).
    """

    def __init__(self, num_lanes=16, pixel_rate_hz=850e6, v_dd=0.9,
                 e_subtract=0.025e-12, e_abs=0.015e-12, e_compare=0.015e-12,
                 e_register_bit=2e-15, e_sram_read=0.15e-12,
                 sram_reads_per_pixel=3, window_register_bits=392,
                 contiguity_energy=0.4e-12, clock_overhead=0.25,
                 leakage_w=0.3e-3):
        self.num_lanes = int(num_lanes)
        self.pixel_rate_hz = float(pixel_rate_hz)
        self.v_dd = float(v_dd)
        self.e_subtract = float(e_subtract)
        self.e_abs = float(e_abs)
        self.e_compare = float(e_compare)
        self.e_register_bit = float(e_register_bit)
        self.e_sram_read = float(e_sram_read)
        self.sram_reads_per_pixel = float(sram_reads_per_pixel)
        # 7x7 window of 8-bit pixels = 392 clocked register bits
        self.window_register_bits = int(window_register_bits)
        self.contiguity_energy = float(contiguity_energy)
        self.clock_overhead = float(clock_overhead)
        self.leakage_w = float(leakage_w)

    def energy_per_pixel(self):
        """Dynamic energy to test one pixel, joules."""
        lane_energy = self.num_lanes * (self.e_subtract + self.e_abs
                                        + self.e_compare)
        buffer_energy = self.sram_reads_per_pixel * self.e_sram_read
        window_energy = self.window_register_bits * self.e_register_bit
        return (lane_energy + buffer_energy + window_energy
                + self.contiguity_energy)

    def breakdown(self):
        """Component-wise power in watts."""
        dynamic = self.energy_per_pixel() * self.pixel_rate_hz
        clocked = dynamic * (1.0 + self.clock_overhead)
        return {
            "energy_per_pixel_j": self.energy_per_pixel(),
            "dynamic_w": dynamic,
            "clock_tree_w": dynamic * self.clock_overhead,
            "leakage_w": self.leakage_w,
            "total_w": clocked + self.leakage_w,
        }

    def total_power(self):
        """Block power in watts."""
        return self.breakdown()["total_w"]


def power_comparison(num_pairs=16, impedance_scale=1.68,
                     pixel_rate_hz=850e6):
    """The Section III.B comparison: oscillator vs CMOS block power.

    Returns a dict with both totals (watts), both breakdowns, and the
    CMOS/oscillator power ratio the paper reports as ~3 mW / 0.936 mW.
    """
    oscillator_block = OscillatorBlockPower(num_pairs=num_pairs,
                                            impedance_scale=impedance_scale)
    cmos_block = CmosFastPower(num_lanes=num_pairs,
                               pixel_rate_hz=pixel_rate_hz)
    oscillator = oscillator_block.breakdown()
    cmos = cmos_block.breakdown()
    return {
        "oscillator_w": oscillator["total_w"],
        "cmos_w": cmos["total_w"],
        "ratio": cmos["total_w"] / oscillator["total_w"],
        "oscillator_breakdown": oscillator,
        "cmos_breakdown": cmos,
        "paper_oscillator_w": 0.936e-3,
        "paper_cmos_w": 3.0e-3,
        "paper_ratio": 3.0 / 0.936,
    }
