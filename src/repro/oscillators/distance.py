"""The coupled-oscillator distance primitive used by the FAST pipeline.

Section III.B: "The intensities of the pixels under comparison are then
fed as voltages to the coupled oscillator distance metric computation
primitive for the comparison operation.  The distance metric gives an
approximation of absolute difference between the two voltages, but the
direction of the difference ... is not known."

:class:`OscillatorDistanceUnit` is that primitive: two pixel intensities
are encoded as the gate voltages of a coupled pair and the XOR-readout
measure (a monotone function of |difference| inside the locking range) is
returned.  Two operating modes:

* ``behavioral`` (default) -- the calibrated closed-form response
  ``measure = baseline + scale * |dVgs|^k`` with the exponent taken from
  the Fig. 5 family.  This is what the image-scale FAST benchmarks use:
  one pixel comparison costs one function evaluation, exactly how an
  accuracy-tunable oscillator co-processor would be deployed behind a
  calibration table.
* ``physical`` -- every comparison runs the full coupled-pair ODE
  simulation and XOR readout.  Slow; used by integration tests to confirm
  the behavioral table tracks the physics.
"""

import time

import numpy as np

from ..core import cache as result_cache
from ..core import parallel, profiling, resilience, telemetry
from ..core.exceptions import OscillatorError
from .locking import DEFAULT_C_C, simulate_calibrated_pair
from .norms import xor_measure_curve
from .readout import XorReadout


def _measure_pairs_chunk(payload):
    """Worker entry point: score one block of intensity pairs.

    Rebuilds the distance unit from its config dict inside the worker
    (the unit binds telemetry instruments at construction, so each
    worker's copy binds to that worker's local registry).  ``pairs``
    arrives as an ``(n, 2)`` float array -- a shape the engine can ship
    through shared memory -- and the whole block is scored in one
    :meth:`OscillatorDistanceUnit.measure_batch` call.
    """
    config, pairs = payload
    unit = OscillatorDistanceUnit(**config)
    pairs = np.asarray(pairs, dtype=float).reshape(-1, 2)
    return unit.measure_batch(pairs[:, 0], pairs[:, 1])


def _block_is_finite(values):
    """Validate hook: every measure in a block must be a finite float."""
    return bool(np.isfinite(values).all())


def _encode_measures(values):
    return [float(value) for value in values]


class OscillatorDistanceUnit:
    """Analog |a - b| comparator built from a coupled oscillator pair.

    Parameters
    ----------
    mode : str
        ``"behavioral"`` or ``"physical"``.
    base_v_gs : float
        Operating-point gate voltage both inputs are biased around.
    v_gs_span : float
        Full-scale input swing in volts: intensity 0 maps to
        ``base - span/2``, intensity ``intensity_scale`` maps to
        ``base + span/2``.  Kept inside the pair's locking range.
    r_c : float
        Coupling resistance (selects the effective norm exponent).
    norm_exponent : float
        Behavioral-mode exponent ``k``; calibrate from
        :func:`repro.oscillators.norms.effective_norm_exponent`.
    intensity_scale : float
        Input intensity full scale (255 for 8-bit images).
    cycles : int
        Physical-mode simulation length in oscillation cycles.
    """

    def __init__(self, mode="behavioral", base_v_gs=1.8, v_gs_span=0.08,
                 r_c=35e3, c_c=DEFAULT_C_C, norm_exponent=1.6,
                 behavioral_scale=None, behavioral_baseline=0.0,
                 intensity_scale=255.0, cycles=120):
        if mode not in ("behavioral", "physical"):
            raise OscillatorError("mode must be 'behavioral' or 'physical'")
        if v_gs_span <= 0:
            raise OscillatorError("v_gs_span must be positive")
        self.mode = mode
        self.base_v_gs = float(base_v_gs)
        self.v_gs_span = float(v_gs_span)
        self.r_c = float(r_c)
        self.c_c = float(c_c)
        self.norm_exponent = float(norm_exponent)
        self.behavioral_baseline = float(behavioral_baseline)
        if behavioral_scale is None:
            # normalize so a full-scale difference reads 1.0
            behavioral_scale = (1.0 - self.behavioral_baseline) \
                / (self.v_gs_span ** self.norm_exponent)
        self.behavioral_scale = float(behavioral_scale)
        self.intensity_scale = float(intensity_scale)
        self.cycles = int(cycles)
        self._readout = XorReadout()
        # Bound once at construction; no-op singletons when telemetry is
        # disabled, so the per-comparison hot path stays branch-cheap.
        registry = telemetry.get_registry()
        self._eval_counter = registry.counter("oscillator.distance.evals")
        self._eval_timer = registry.histogram(
            "oscillator.distance.eval_seconds")

    # -- encoding ---------------------------------------------------------

    def intensity_to_v_gs(self, intensity):
        """Map a pixel intensity onto the oscillator input voltage."""
        fraction = float(intensity) / self.intensity_scale
        return self.base_v_gs + (fraction - 0.5) * self.v_gs_span

    def delta_v_gs(self, intensity_a, intensity_b):
        """Gate-voltage difference the pair sees for two intensities."""
        return (self.intensity_to_v_gs(intensity_a)
                - self.intensity_to_v_gs(intensity_b))

    # -- the primitive -------------------------------------------------------

    def measure(self, intensity_a, intensity_b):
        """XOR-readout measure for two pixel intensities (monotone in |a-b|)."""
        if self._eval_timer:
            start = time.perf_counter()
            result = self._measure(intensity_a, intensity_b)
            self._eval_timer.observe(time.perf_counter() - start)
            self._eval_counter.inc()
            return result
        return self._measure(intensity_a, intensity_b)

    def _measure(self, intensity_a, intensity_b):
        delta = abs(self.delta_v_gs(intensity_a, intensity_b))
        if self.mode == "behavioral":
            # np.power, not the builtin ``**``: libm's pow disagrees
            # with numpy's vectorized pow in the last ulp for ~5% of
            # inputs, while np.power is bit-stable across array shapes,
            # offsets, and strides -- using it here keeps this scalar
            # reference bit-identical to :meth:`measure_batch`.
            response = self.behavioral_baseline + self.behavioral_scale \
                * float(np.power(delta, self.norm_exponent))
            return float(min(1.0, response))
        v_a = self.intensity_to_v_gs(intensity_a)
        v_b = self.intensity_to_v_gs(intensity_b)
        times, wave_a, wave_b = simulate_calibrated_pair(
            v_a, v_b, self.r_c, c_c=self.c_c, cycles=self.cycles)
        return self._readout.measure(times, wave_a, wave_b)

    def measure_batch(self, intensities_a, intensities_b):
        """Measures for two parallel intensity arrays, element-wise.

        Bit-identical to calling :meth:`measure` on every pair (the
        equivalence tier asserts ``np.array_equal``): the behavioral
        response is the same chain of IEEE-754 operations, applied to
        the whole array at once instead of pair-at-a-time through the
        interpreter.  Physical mode has no dense form (each comparison
        is an ODE integration) and falls back to the scalar loop.
        Telemetry counts every element in ``oscillator.distance.evals``;
        ``eval_seconds`` sees one observation per batch.
        """
        a = np.asarray(intensities_a, dtype=float)
        b = np.asarray(intensities_b, dtype=float)
        if a.shape != b.shape:
            raise OscillatorError("intensity array shape mismatch")
        if self.mode != "behavioral":
            flat_a, flat_b = a.ravel(), b.ravel()
            return np.array([self._measure(x, y)
                             for x, y in zip(flat_a, flat_b)]
                            ).reshape(a.shape)
        if self._eval_timer:
            start = time.perf_counter()
        v_a = self.base_v_gs \
            + (a / self.intensity_scale - 0.5) * self.v_gs_span
        v_b = self.base_v_gs \
            + (b / self.intensity_scale - 0.5) * self.v_gs_span
        delta = np.abs(v_a - v_b)
        response = self.behavioral_baseline \
            + self.behavioral_scale * np.power(delta, self.norm_exponent)
        measures = np.minimum(1.0, response)
        if self._eval_timer:
            self._eval_timer.observe(time.perf_counter() - start)
            self._eval_counter.inc(a.size)
        return measures

    def config(self):
        """Constructor kwargs reproducing this unit (picklable dict).

        The parallel fan-out ships this instead of the unit itself so
        worker-side copies bind their telemetry instruments to the
        worker's local registry.
        """
        return {
            "mode": self.mode,
            "base_v_gs": self.base_v_gs,
            "v_gs_span": self.v_gs_span,
            "r_c": self.r_c,
            "c_c": self.c_c,
            "norm_exponent": self.norm_exponent,
            "behavioral_scale": self.behavioral_scale,
            "behavioral_baseline": self.behavioral_baseline,
            "intensity_scale": self.intensity_scale,
            "cycles": self.cycles,
        }

    def measure_pairs(self, pairs, workers=None, chunk_size=None,
                      timeout=None, retry=None, checkpoint=None,
                      resume_from=None, checkpoint_every=1, cache=None):
        """Measures for a sequence of ``(a, b)`` intensity pairs, in order.

        The image-scale fan-out path: pairs are split into blocks
        (chunking depends only on the pair count and ``chunk_size``) and
        scored on the parallel engine's workers; each worker's telemetry
        (``oscillator.distance.evals`` etc.) merges into the active
        registry at join.  The primitive is deterministic, so results
        are identical for every worker count; ``workers=1`` with
        ``chunk_size=None`` (and no resilience options) scores inline on
        this unit.  ``timeout``/``retry`` bound and re-dispatch failed
        blocks; ``checkpoint``/``resume_from`` (paths) persist finished
        blocks so an interrupted image sweep resumes where it stopped.
        ``cache`` (None / False / path /
        :class:`~repro.core.cache.ResultCache`) reuses measures
        content-addressed by the pair values and the unit's calibration
        (the primitive has no RNG, so every workload is cacheable):
        whole-call on the serial path, per block on the chunked path.
        """
        pairs = [(float(a), float(b)) for a, b in pairs]
        workers = parallel.resolve_workers(workers)
        resilient = (timeout is not None or retry is not None
                     or checkpoint is not None or resume_from is not None)
        config = self.config()
        cache_meta = {"pairs": result_cache.digest(pairs),
                      "count": len(pairs),
                      "config": resilience.jsonable(config)}
        if workers == 1 and chunk_size is None and not resilient:
            spec = result_cache.spec_for(
                cache, "oscillator-distance", cache_meta,
                encode=_encode_measures)
            if spec is not None:
                hit, measures = spec.lookup()
                if hit:
                    return measures
            start = time.perf_counter()
            pair_array = np.asarray(pairs, dtype=float).reshape(-1, 2)
            measures = [float(value) for value in
                        self.measure_batch(pair_array[:, 0],
                                           pair_array[:, 1])]
            profiling.record_throughput("oscillator.distance.pairs",
                                        len(pairs),
                                        time.perf_counter() - start)
            if spec is not None:
                spec.store(measures)
            return measures
        pair_array = np.asarray(pairs, dtype=float).reshape(-1, 2)
        sizes = parallel.chunk_sizes(len(pairs), chunk_size)
        chunks = []
        offset = 0
        for size in sizes:
            chunks.append(pair_array[offset:offset + size])
            offset += size
        ckpt = None
        if checkpoint is not None or resume_from is not None:
            meta = {"pairs": len(pairs), "sizes": sizes,
                    "config": resilience.jsonable(config)}
            ckpt = resilience.Checkpointer(
                checkpoint if checkpoint is not None else resume_from,
                "oscillator-distance", meta=meta, encode=_encode_measures,
                every=checkpoint_every, resume_from=resume_from)
        spec = result_cache.spec_for(
            cache, "oscillator-distance-chunk",
            dict(cache_meta, sizes=sizes), encode=_encode_measures)
        start = time.perf_counter()
        blocks = parallel.ParallelMap(workers=workers, timeout=timeout).map(
            _measure_pairs_chunk, [(config, chunk) for chunk in chunks],
            retry=retry, validate=_block_is_finite, checkpoint=ckpt,
            cache=spec)
        profiling.record_throughput("oscillator.distance.pairs",
                                    len(pairs),
                                    time.perf_counter() - start)
        return [float(measure) for block in blocks for measure in block]

    def measure_threshold(self, intensity_threshold):
        """Measure level corresponding to an intensity difference threshold.

        The FAST comparator asks "is |a - b| > t"; in oscillator hardware
        that is "is the measure above measure(t)", with measure(t) supplied
        by this calibration helper (behavioral response evaluated at t).
        """
        delta = abs(self.delta_v_gs(intensity_threshold, 0.0))
        response = self.behavioral_baseline + self.behavioral_scale \
            * float(np.power(delta, self.norm_exponent))
        return float(min(1.0, response))

    def exceeds(self, intensity_a, intensity_b, intensity_threshold):
        """True when the analog distance reads above the threshold level."""
        return self.measure(intensity_a, intensity_b) \
            > self.measure_threshold(intensity_threshold)

    # -- calibration -----------------------------------------------------------

    def calibrate_from_physics(self, num_points=6):
        """Fit the behavioral response to fresh physical simulations.

        Runs the XOR-measure sweep across the unit's input span, fits the
        exponent/scale/baseline, updates the behavioral parameters in
        place, and returns ``(deltas, measures)`` for inspection.
        """
        deltas = np.linspace(0.0, self.v_gs_span, num_points)
        measures = xor_measure_curve(self.base_v_gs, deltas, self.r_c,
                                     c_c=self.c_c, cycles=self.cycles)
        baseline = float(measures[0])
        rise = measures - baseline
        usable = deltas > 0
        usable &= rise > 1e-3
        if np.count_nonzero(usable) >= 2:
            slope, intercept = np.polyfit(np.log(deltas[usable]),
                                          np.log(rise[usable]), 1)
            self.norm_exponent = float(slope)
            self.behavioral_scale = float(np.exp(intercept))
            self.behavioral_baseline = baseline
        return deltas, measures

    def __repr__(self):
        return ("OscillatorDistanceUnit(mode=%s, k=%.2f, r_c=%g)"
                % (self.mode, self.norm_exponent, self.r_c))
