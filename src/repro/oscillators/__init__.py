"""Intrinsic computing with weakly coupled VO2 oscillators (Section III).

Bottom-up structure mirroring the paper's narrative:

* device physics -- :mod:`repro.oscillators.vo2`,
  :mod:`repro.oscillators.transistor`
* the 1T1R relaxation oscillator -- :mod:`repro.oscillators.relaxation`
* RC coupling and frequency locking (Fig. 3) --
  :mod:`repro.oscillators.coupling`, :mod:`repro.oscillators.locking`
* the XOR readout (Fig. 4) -- :mod:`repro.oscillators.readout`
* the l_k distance-norm family (Fig. 5) -- :mod:`repro.oscillators.norms`,
  :mod:`repro.oscillators.distance`
* FAST corner detection (Fig. 6) -- :mod:`repro.oscillators.fast`
* the power comparison against 32 nm CMOS --
  :mod:`repro.oscillators.power`
* cited secondary applications: vertex coloring via phase dynamics
  ([42]) -- :mod:`repro.oscillators.coloring`; the sorting /
  degree-of-match co-processor ([44]) --
  :mod:`repro.oscillators.coprocessor`
"""

from .coloring import ColoringResult, color_graph
from .coprocessor import (
    AssociativeMemory,
    best_match,
    degree_of_match,
    rank_order_sort,
    value_to_v_gs,
)
from .coupling import CoupledOscillatorNetwork, CouplingBranch, coupled_pair
from .distance import OscillatorDistanceUnit
from .morphology import OscillatorRankFilter, edge_map
from .locking import (
    LockingResult,
    arnold_tongue,
    check_locking,
    locking_curve,
    locking_range,
    simulate_calibrated_pair,
)
from .norms import (
    analytic_norm_curve,
    effective_norm_exponent,
    fit_norm_exponent,
    xor_measure_curve,
)
from .power import (
    CmosFastPower,
    OscillatorBlockPower,
    oscillator_average_power,
    power_comparison,
    scaled_oscillator,
)
from .readout import XorReadout
from .relaxation import RelaxationOscillator, frequency_tuning_curve
from .transistor import SeriesTransistor
from .vo2 import INSULATING, METALLIC, Vo2Device

__all__ = [
    "ColoringResult",
    "color_graph",
    "AssociativeMemory",
    "best_match",
    "degree_of_match",
    "rank_order_sort",
    "value_to_v_gs",
    "CoupledOscillatorNetwork",
    "CouplingBranch",
    "coupled_pair",
    "OscillatorDistanceUnit",
    "OscillatorRankFilter",
    "edge_map",
    "LockingResult",
    "arnold_tongue",
    "check_locking",
    "locking_curve",
    "locking_range",
    "simulate_calibrated_pair",
    "analytic_norm_curve",
    "effective_norm_exponent",
    "fit_norm_exponent",
    "xor_measure_curve",
    "CmosFastPower",
    "OscillatorBlockPower",
    "oscillator_average_power",
    "power_comparison",
    "scaled_oscillator",
    "XorReadout",
    "RelaxationOscillator",
    "frequency_tuning_curve",
    "SeriesTransistor",
    "INSULATING",
    "METALLIC",
    "Vo2Device",
]
