"""repro: reproduction of "Rebooting Our Computing Models" (DATE 2019).

The library implements, from scratch, the three post-von-Neumann computing
models the paper presents:

* :mod:`repro.quantum` -- a quantum computer modelled as an accelerator in
  a heterogeneous system (Section II): full stack from application layer
  through compiler and micro-architecture down to a simulated qubit chip.
* :mod:`repro.oscillators` -- intrinsic computing with weakly coupled VO2
  relaxation oscillators (Section III): device physics, frequency locking,
  XOR readout, l_k distance norms, and FAST corner detection.
* :mod:`repro.memcomputing` -- digital memcomputing machines built from
  self-organizing logic gates (Section IV): DMM dynamics (Eqs. 1-2), SAT /
  MaxSAT solving, RBM training acceleration, and spin-glass studies.
* :mod:`repro.inmemory` -- the intro's in-memory computing survey made
  executable: a ReRAM crossbar with PLIM resistive-majority logic and
  analog vector-matrix multiplication (refs [1], [21], [22]).

Shared numerical substrate lives in :mod:`repro.core`.
"""

__version__ = "1.0.0"

__all__ = ["core", "quantum", "oscillators", "memcomputing", "inmemory"]
