"""Runtime-support layer: shot scheduling and result aggregation.

Sits between the compiler and the micro-architecture in the Fig. 2 stack.
The runtime owns the execution loop that real control software provides:
repeat the kernel for N shots, collect classical results, histogram them,
and account accumulated chip time.
"""

import math
import time

from ..core import cache as result_cache
from ..core import parallel, profiling, resilience, telemetry
from ..core.exceptions import QuantumError
from ..core.rngs import make_rng, spawn_rngs
from .microarch import MicroArchitecture, assemble


def circuit_fingerprint(circuit):
    """Content description of a circuit for cache keying.

    Stronger than ``gate_counts()`` (enough for a per-run checkpoint
    file, too weak for a shared cache directory): every op contributes
    its name, qubits, parameters, and -- for explicit-matrix or
    permutation ops -- a hash of the actual array contents.
    """
    ops = []
    for op in circuit.ops:
        if hasattr(op, "cbit"):                  # MeasureOp
            ops.append(["measure", int(op.qubit), str(op.cbit)])
        else:
            ops.append([
                str(op.name), list(op.qubits), list(op.params),
                None if op.matrix is None
                else result_cache.array_fingerprint(op.matrix),
                None if op.permutation is None
                else result_cache.array_fingerprint(op.permutation)])
    return result_cache.digest([int(circuit.num_qubits), ops])


def _microarch_meta(microarch):
    """The micro-architecture knobs that decide shot results/timing."""
    return {"num_qubits": int(microarch.num_qubits),
            "durations_ns": dict(microarch.durations_ns),
            "coherence_ns": float(microarch.coherence_ns)}


def _run_shot_chunk(payload):
    """Worker entry point: execute one block of shots.

    Module-level (picklable) for
    :class:`repro.core.parallel.ParallelMap`; re-assembles the kernel in
    the worker and returns ``(counts, chip_time_ns)`` for its block.
    """
    microarch, circuit, cbit_order, shots, rng = payload
    program = assemble(circuit)
    counts = {}
    chip_time = 0.0
    # Batched prefix-tree execution; the results come back in shot order,
    # so the histogram's insertion order (which breaks most_common ties)
    # and the iterated chip-time float sum match the old per-shot loop.
    for result in microarch.execute_shots(program, shots, rng=rng):
        value = result.bits_as_int(cbit_order)
        counts[value] = counts.get(value, 0) + 1
        chip_time += result.elapsed_ns
    return counts, chip_time


def _block_is_sane(value):
    """Validate hook: a shot block is ``(int counts, finite chip time)``."""
    counts, chip_time = value
    return (isinstance(chip_time, float) and math.isfinite(chip_time)
            and all(isinstance(count, int) for count in counts.values()))


def _encode_block(value):
    counts, chip_time = value
    # JSON objects cannot key on ints: store the histogram as pairs.
    return {"counts": [[int(outcome), int(count)]
                       for outcome, count in sorted(counts.items())],
            "chip_time_ns": float(chip_time)}


def _decode_block(doc):
    return ({int(outcome): int(count) for outcome, count in doc["counts"]},
            float(doc["chip_time_ns"]))


class ShotResult:
    """Aggregated results of a multi-shot kernel execution.

    Attributes
    ----------
    counts : dict
        Bitstring value (int, first-measured cbit is the LSB) -> count.
    cbit_order : list of str
        Classical bit names in LSB-first order.
    shots : int
        Number of shots executed.
    total_chip_time_ns : float
        Accumulated on-chip execution time over all shots.
    wall_time : float
        Host wall-clock seconds the runtime spent on the execution loop.
    """

    def __init__(self, counts, cbit_order, shots, total_chip_time_ns,
                 wall_time=0.0):
        self.counts = dict(counts)
        self.cbit_order = list(cbit_order)
        self.shots = int(shots)
        self.total_chip_time_ns = float(total_chip_time_ns)
        self.wall_time = float(wall_time)

    def probability(self, value):
        """Empirical probability of an integer outcome."""
        return self.counts.get(value, 0) / self.shots

    def most_common(self, n=1):
        """The ``n`` most frequent outcomes as (value, count) pairs."""
        ranked = sorted(self.counts.items(), key=lambda kv: -kv[1])
        return ranked[:n]

    def __repr__(self):
        return ("ShotResult(shots=%s, outcomes=%d, chip_time=%s, "
                "wall_time=%s)"
                % (telemetry.fmt_quantity(self.shots), len(self.counts),
                   telemetry.fmt_seconds(self.total_chip_time_ns * 1e-9),
                   telemetry.fmt_seconds(self.wall_time)))


class QuantumRuntime:
    """Schedules compiled kernels onto a micro-architecture.

    Parameters
    ----------
    microarch : MicroArchitecture, optional
        Attached control processor; a default is built to fit the first
        kernel when omitted.
    """

    def __init__(self, microarch=None):
        self.microarch = microarch

    def _cache_meta(self, circuit, shots, cbit_order, rng, sizes=None):
        """Cache fingerprint meta for one shot workload."""
        meta = {"shots": int(shots),
                "circuit": circuit_fingerprint(circuit),
                "cbits": list(cbit_order),
                "microarch": _microarch_meta(self.microarch),
                "rng": resilience.rng_fingerprint(rng)}
        if sizes is not None:
            meta["sizes"] = sizes
        return meta

    def _ensure_microarch(self, circuit):
        if self.microarch is None:
            self.microarch = MicroArchitecture(circuit.num_qubits)
        if circuit.num_qubits > self.microarch.num_qubits:
            raise QuantumError(
                "kernel needs %d qubits, attached chip has %d"
                % (circuit.num_qubits, self.microarch.num_qubits)
            )

    def run(self, circuit, shots=1024, rng=None, workers=None,
            chunk_size=None, timeout=None, retry=None, checkpoint=None,
            resume_from=None, checkpoint_every=1, cache=None):
        """Execute ``circuit`` for ``shots`` repetitions.

        The circuit must contain at least one measurement (otherwise shots
        are meaningless); returns a :class:`ShotResult`.

        ``workers``/``chunk_size`` fan the shot loop out over the
        parallel engine: shots are split into blocks (chunking depends
        only on ``shots`` and ``chunk_size``, never on the worker
        count), each block samples its own child generator spawned from
        ``rng``, and block histograms merge by exact integer addition --
        so the counts are bit-identical for every worker count.
        ``workers=1`` with ``chunk_size=None`` (and no resilience
        options) keeps the historical single-stream loop.

        ``timeout`` bounds each block (process path); ``retry`` re-runs
        failed blocks with their original streams;
        ``checkpoint``/``resume_from`` (paths) persist finished block
        histograms so an interrupted sweep resumes with its remaining
        blocks only (``checkpoint_every`` controls the flush cadence).

        ``cache`` (None / False / path /
        :class:`~repro.core.cache.ResultCache`) reuses shot histograms
        content-addressed by the full circuit (op list including matrix
        and permutation contents), micro-architecture knobs, shot count,
        and RNG fingerprint: the serial fast path caches the whole
        histogram (integer seeds only), the chunked path caches per shot
        block.  ``rng=None`` (fresh entropy) is never cached.
        """
        if shots < 1:
            raise QuantumError("shots must be positive")
        cbit_order = [op.cbit for op in circuit.measure_ops]
        if not cbit_order:
            raise QuantumError("kernel has no measurements; nothing to sample")
        self._ensure_microarch(circuit)
        workers = parallel.resolve_workers(workers)
        resilient = (timeout is not None or retry is not None
                     or checkpoint is not None or resume_from is not None)
        registry = telemetry.get_registry()
        with telemetry.span("quantum.runtime.run", shots=shots,
                            qubits=circuit.num_qubits) as run_span:
            start = time.perf_counter()
            if workers == 1 and chunk_size is None and not resilient:
                spec = None
                if result_cache.cacheable_seed(rng):
                    spec = result_cache.spec_for(
                        cache, "quantum-shots",
                        self._cache_meta(circuit, shots, cbit_order, rng),
                        encode=_encode_block, decode=_decode_block)
                counts = chip_time = None
                if spec is not None:
                    hit, value = spec.lookup()
                    if hit:
                        counts, chip_time = value
                if counts is None:
                    rng = make_rng(rng)
                    program = assemble(circuit)
                    counts = {}
                    chip_time = 0.0
                    for result in self.microarch.execute_shots(
                            program, shots, rng=rng):
                        value = result.bits_as_int(cbit_order)
                        counts[value] = counts.get(value, 0) + 1
                        chip_time += result.elapsed_ns
                    if spec is not None:
                        spec.store((counts, chip_time))
            else:
                sizes = parallel.chunk_sizes(shots, chunk_size)
                ckpt = None
                if checkpoint is not None or resume_from is not None:
                    # Fingerprint the RNG before spawn_rngs advances it.
                    meta = {"shots": int(shots), "sizes": sizes,
                            "qubits": int(circuit.num_qubits),
                            "gates": circuit.gate_counts(),
                            "cbits": cbit_order,
                            "rng": resilience.rng_fingerprint(rng)}
                    ckpt = resilience.Checkpointer(
                        checkpoint if checkpoint is not None
                        else resume_from,
                        "quantum-shots", meta=meta, encode=_encode_block,
                        decode=_decode_block, every=checkpoint_every,
                        resume_from=resume_from)
                spec = result_cache.spec_for(
                    cache, "quantum-shots-chunk",
                    self._cache_meta(circuit, shots, cbit_order, rng,
                                     sizes=sizes),
                    encode=_encode_block, decode=_decode_block)
                rngs = spawn_rngs(rng, len(sizes))
                tasks = [(self.microarch, circuit, cbit_order, block,
                          block_rng)
                         for block, block_rng in zip(sizes, rngs)]
                blocks = parallel.ParallelMap(
                    workers=workers, timeout=timeout).map(
                    _run_shot_chunk, tasks, retry=retry,
                    validate=_block_is_sane, checkpoint=ckpt, cache=spec)
                counts = {}
                chip_time = 0.0
                for block_counts, block_time in blocks:
                    for value, count in block_counts.items():
                        counts[value] = counts.get(value, 0) + count
                    chip_time += block_time
            wall_time = time.perf_counter() - start
            run_span.set_attr("chip_time_ns", chip_time)
        if registry.enabled:
            registry.counter("quantum.runtime.runs").inc()
            registry.counter("quantum.runtime.shots").inc(shots)
            registry.counter("quantum.runtime.chip_time_ns").inc(chip_time)
            # gates executed on-chip, by mnemonic, over all shots
            gate_counts = circuit.gate_counts()
            for name, count in gate_counts.items():
                registry.counter("quantum.runtime.gates.%s" % name).inc(
                    count * shots)
            registry.histogram("quantum.runtime.shot_time_ns").observe(
                chip_time / shots)
            # statevector throughput: gates applied per host wall second
            profiling.record_throughput(
                "quantum.runtime.gates",
                sum(gate_counts.values()) * shots, wall_time)
        return ShotResult(counts, cbit_order, shots, chip_time, wall_time)
