"""Standard quantum gate matrices and constructors.

The micro-architecture of Section II executes "a well-defined set of
quantum instructions"; this module defines that set at the matrix level.
All matrices are ``complex128`` numpy arrays in the computational basis
with qubit 0 as the least-significant bit.
"""

import cmath
import math

import numpy as np

from ..core.exceptions import QuantumError

_SQRT2_INV = 1.0 / math.sqrt(2.0)

I = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]],
             dtype=complex)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4.0)]], dtype=complex)
TDG = T.conj().T

# Multi-qubit gates follow the library-wide operand convention: the first
# listed qubit is the least-significant bit of the gate's local index, so
# controls occupy the LOW bits (see StateVector.apply_gate).  CNOT with
# control c (bit 0) and target t (bit 1) therefore swaps local indices
# 1 (c=1,t=0) and 3 (c=1,t=1).
CNOT = np.eye(4, dtype=complex)
CNOT[[1, 3], :] = CNOT[[3, 1], :]

CZ = np.diag([1, 1, 1, -1]).astype(complex)

SWAP = np.array([
    [1, 0, 0, 0],
    [0, 0, 1, 0],
    [0, 1, 0, 0],
    [0, 0, 0, 1],
], dtype=complex)

# Toffoli: controls are bits 0 and 1, target is bit 2; swap 011 <-> 111.
TOFFOLI = np.eye(8, dtype=complex)
TOFFOLI[[3, 7], :] = TOFFOLI[[7, 3], :]


def rx(theta):
    """Rotation about the X axis by ``theta`` radians."""
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta):
    """Rotation about the Y axis by ``theta`` radians."""
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta):
    """Rotation about the Z axis by ``theta`` radians."""
    phase = cmath.exp(1j * theta / 2.0)
    return np.array([[1.0 / phase, 0], [0, phase]], dtype=complex)


def phase_gate(lam):
    """Diagonal phase gate diag(1, e^{i lam}) (a.k.a. P or U1)."""
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def u3(theta, phi, lam):
    """General single-qubit gate in the standard U3 parametrization."""
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array([
        [c, -cmath.exp(1j * lam) * s],
        [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
    ], dtype=complex)


def controlled(unitary, num_controls=1):
    """Lift ``unitary`` to a controlled gate with ``num_controls`` controls.

    Controls occupy the low qubit positions of the returned matrix's index
    (consistent with :class:`repro.quantum.state.StateVector` application
    order where the *first* listed qubits are the controls).
    """
    unitary = np.asarray(unitary, dtype=complex)
    dim = unitary.shape[0]
    if unitary.shape != (dim, dim):
        raise QuantumError("controlled() requires a square matrix")
    total = dim * (2 ** num_controls)
    out = np.eye(total, dtype=complex)
    # The controlled block acts when all control bits are 1.  With controls
    # in the low bits, those are indices whose low num_controls bits are
    # all ones: index = target_index * 2^c + (2^c - 1).
    stride = 2 ** num_controls
    offset = stride - 1
    sel = np.arange(dim) * stride + offset
    out[np.ix_(sel, sel)] = unitary
    return out


def is_unitary(matrix, tol=1e-10):
    """True when ``matrix`` is unitary to tolerance ``tol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = matrix.conj().T @ matrix
    return bool(np.allclose(identity, np.eye(matrix.shape[0]), atol=tol))


#: Registry mapping instruction mnemonics to (matrix or factory, arity,
#: number of float parameters).  This is the library's quantum ISA.
GATE_SET = {
    "i": (I, 1, 0),
    "x": (X, 1, 0),
    "y": (Y, 1, 0),
    "z": (Z, 1, 0),
    "h": (H, 1, 0),
    "s": (S, 1, 0),
    "sdg": (SDG, 1, 0),
    "t": (T, 1, 0),
    "tdg": (TDG, 1, 0),
    "rx": (rx, 1, 1),
    "ry": (ry, 1, 1),
    "rz": (rz, 1, 1),
    "p": (phase_gate, 1, 1),
    "u3": (u3, 1, 3),
    "cnot": (CNOT, 2, 0),
    "cz": (CZ, 2, 0),
    "swap": (SWAP, 2, 0),
    "cp": (lambda lam: controlled(phase_gate(lam)), 2, 1),
    "toffoli": (TOFFOLI, 3, 0),
}


def gate_matrix(name, params=()):
    """Resolve a mnemonic (plus parameters) to its unitary matrix."""
    if name not in GATE_SET:
        raise QuantumError("unknown gate mnemonic %r" % name)
    entry, _arity, n_params = GATE_SET[name]
    params = tuple(params)
    if len(params) != n_params:
        raise QuantumError(
            "gate %r expects %d parameters, got %d"
            % (name, n_params, len(params))
        )
    if n_params == 0:
        return entry
    return entry(*params)


def gate_arity(name):
    """Number of qubits the named gate acts on."""
    if name not in GATE_SET:
        raise QuantumError("unknown gate mnemonic %r" % name)
    return GATE_SET[name][1]
