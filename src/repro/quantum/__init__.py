"""Quantum computing as an accelerator (Section II of the paper).

Layered exactly as Fig. 2 prescribes:

* application / algorithms -- :mod:`repro.quantum.algorithms`
* language -- :mod:`repro.quantum.qasm`
* compiler (mapping + routing) -- :mod:`repro.quantum.compiler`
* runtime -- :mod:`repro.quantum.runtime`
* micro-architecture -- :mod:`repro.quantum.microarch`
* chip (simulated) -- :mod:`repro.quantum.state`

and the Fig. 1 heterogeneous host model in :mod:`repro.quantum.hetero`.
"""

from .accelerator import QuantumAccelerator, StackReport
from .adiabatic import (
    AdiabaticResult,
    anneal_quantum,
    ising_diagonal,
    success_vs_annealing_time,
)
from .density import DensityMatrix, bell_agreement_exact
from .circuit import GateOp, MeasureOp, QuantumCircuit
from .compiler import (
    CompiledCircuit,
    GridTopology,
    LinearTopology,
    compile_circuit,
    decompose,
    optimize,
    route,
    verify_equivalence,
)
from .hetero import (
    Device,
    DispatchReport,
    HeterogeneousSystem,
    Task,
    default_devices,
    example_workload,
)
from .microarch import ExecutionResult, Instruction, MicroArchitecture, assemble
from .noise import (
    DepolarizingNoise,
    NoisyMicroArchitecture,
    bell_fidelity_vs_noise,
)
from .runtime import QuantumRuntime, ShotResult
from .state import StateVector

__all__ = [
    "QuantumAccelerator",
    "StackReport",
    "AdiabaticResult",
    "anneal_quantum",
    "ising_diagonal",
    "success_vs_annealing_time",
    "DensityMatrix",
    "bell_agreement_exact",
    "GateOp",
    "MeasureOp",
    "QuantumCircuit",
    "CompiledCircuit",
    "GridTopology",
    "LinearTopology",
    "compile_circuit",
    "decompose",
    "optimize",
    "route",
    "verify_equivalence",
    "Device",
    "DispatchReport",
    "HeterogeneousSystem",
    "Task",
    "default_devices",
    "example_workload",
    "DepolarizingNoise",
    "NoisyMicroArchitecture",
    "bell_fidelity_vs_noise",
    "ExecutionResult",
    "Instruction",
    "MicroArchitecture",
    "assemble",
    "QuantumRuntime",
    "ShotResult",
    "StateVector",
]
