"""A small cQASM-like textual quantum ISA.

The Fig. 2 stack includes a language layer between the algorithm and the
compiler.  This module defines that surface: a line-oriented assembly with
one instruction per line, close in spirit to cQASM 1.0 (the language of
the TU Delft quantum stack the paper's Section II describes).

Grammar (one statement per line; ``#`` starts a comment)::

    version 1.0
    qubits 5
    h q0
    cnot q0, q1
    rz q2, 0.5
    cp q1, q3, 1.5707963
    measure q4 -> c4

Only primitive ISA gates are expressible; circuits containing raw-matrix
or permutation blocks must be lowered by the compiler first.
"""

from ..core.exceptions import QasmError
from .circuit import GateOp, MeasureOp, QuantumCircuit
from .gates import GATE_SET


def emit(circuit):
    """Serialize a lowered :class:`QuantumCircuit` to QASM text."""
    lines = ["version 1.0", "qubits %d" % circuit.num_qubits]
    for op in circuit.ops:
        if isinstance(op, MeasureOp):
            lines.append("measure q%d -> %s" % (op.qubit, op.cbit))
            continue
        if not op.is_primitive:
            raise QasmError(
                "op %r is not a primitive ISA gate; run the compiler first"
                % (op.name,)
            )
        operands = ", ".join("q%d" % q for q in op.qubits)
        if op.params:
            operands += ", " + ", ".join(repr(p) for p in op.params)
        lines.append("%s %s" % (op.name, operands))
    return "\n".join(lines) + "\n"


def _parse_qubit(token, line_no):
    token = token.strip()
    if not token.startswith("q"):
        raise QasmError("expected qubit operand at line %d, got %r"
                        % (line_no, token))
    try:
        return int(token[1:])
    except ValueError:
        raise QasmError("bad qubit operand at line %d: %r" % (line_no, token))


def parse(text):
    """Parse QASM text into a :class:`QuantumCircuit`.

    Raises :class:`QasmError` on syntax errors, unknown mnemonics, arity
    mismatches, or out-of-range qubits.
    """
    num_qubits = None
    ops = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith("version"):
            continue
        if lowered.startswith("qubits"):
            parts = line.split()
            if len(parts) != 2:
                raise QasmError("bad qubits declaration at line %d" % line_no)
            try:
                num_qubits = int(parts[1])
            except ValueError:
                raise QasmError("bad qubit count at line %d" % line_no)
            if num_qubits < 1:
                raise QasmError("qubit count must be positive (line %d)" % line_no)
            continue
        if num_qubits is None:
            raise QasmError("instruction before qubits declaration at line %d"
                            % line_no)
        if lowered.startswith("measure"):
            body = line[len("measure"):].strip()
            if "->" not in body:
                raise QasmError("measure without '->' at line %d" % line_no)
            qubit_tok, cbit_tok = body.split("->", 1)
            qubit = _parse_qubit(qubit_tok, line_no)
            cbit = cbit_tok.strip()
            if not cbit:
                raise QasmError("measure without classical bit at line %d"
                                % line_no)
            ops.append(MeasureOp(qubit, cbit))
            continue
        # gate instruction: mnemonic operand[, operand...]
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in GATE_SET:
            raise QasmError("unknown mnemonic %r at line %d" % (mnemonic, line_no))
        _, arity, n_params = GATE_SET[mnemonic]
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [tok.strip() for tok in operand_text.split(",") if tok.strip()]
        if len(tokens) != arity + n_params:
            raise QasmError(
                "gate %r at line %d expects %d operands, got %d"
                % (mnemonic, line_no, arity + n_params, len(tokens))
            )
        qubits = [_parse_qubit(tok, line_no) for tok in tokens[:arity]]
        params = []
        for tok in tokens[arity:]:
            try:
                params.append(float(tok))
            except ValueError:
                raise QasmError("bad parameter %r at line %d" % (tok, line_no))
        ops.append(GateOp(mnemonic, qubits, params=params))
    if num_qubits is None:
        raise QasmError("missing qubits declaration")
    circuit = QuantumCircuit(num_qubits, name="qasm")
    for op in ops:
        circuit.append(op)
    return circuit
