"""Noise channels for the simulated qubit chip.

Section II.B's central challenge is decoherence: "Qubits with
sufficiently long coherence times ... are crucial requirements that have
not yet been met."  The ideal statevector backend is exact; this module
adds the standard stochastic error channels so that the stack can study
how results degrade as the chip gets worse:

* :class:`DepolarizingNoise` -- after every gate, each touched qubit
  suffers a uniformly random Pauli error with probability ``p``,
* readout error -- measured bits flip with probability ``p_readout``,

implemented as Monte-Carlo trajectories (exact for these channels when
averaged over shots).  :class:`NoisyMicroArchitecture` drops into the
stack wherever :class:`~repro.quantum.microarch.MicroArchitecture` fits.
"""


from ..core.exceptions import QuantumError
from ..core.rngs import make_rng
from . import gates
from .microarch import MicroArchitecture

_PAULIS = (gates.X, gates.Y, gates.Z)


class DepolarizingNoise:
    """Per-gate single-qubit depolarizing channel (trajectory sampling).

    Parameters
    ----------
    gate_error : float
        Probability that each qubit touched by a gate suffers a random
        Pauli afterwards.
    readout_error : float
        Probability that a measurement result is reported flipped.
    """

    def __init__(self, gate_error=0.0, readout_error=0.0):
        if not 0.0 <= gate_error <= 1.0:
            raise QuantumError("gate_error must be a probability")
        if not 0.0 <= readout_error <= 1.0:
            raise QuantumError("readout_error must be a probability")
        self.gate_error = float(gate_error)
        self.readout_error = float(readout_error)

    def apply_after_gate(self, state, qubits, rng):
        """Sample and apply Pauli errors on the gate's operand qubits."""
        if self.gate_error == 0.0:
            return
        for qubit in qubits:
            if rng.random() < self.gate_error:
                pauli = _PAULIS[rng.integers(0, 3)]
                state.apply_gate(pauli, [qubit])

    def corrupt_readout(self, bit, rng):
        """Possibly flip a measured classical bit."""
        if self.readout_error and rng.random() < self.readout_error:
            return 1 - bit
        return bit


class NoisyMicroArchitecture(MicroArchitecture):
    """A micro-architecture whose chip suffers gate and readout errors."""

    def __init__(self, num_qubits, noise, **kwargs):
        super().__init__(num_qubits, **kwargs)
        if not isinstance(noise, DepolarizingNoise):
            raise QuantumError("noise must be a DepolarizingNoise")
        self.noise = noise

    def execute(self, program, rng=None, max_instructions=1_000_000):
        """Execute with noise injected after gates and at readout."""
        rng = make_rng(rng)
        # Re-implement the dispatch loop with noise hooks; the parent's
        # loop is small enough that sharing via callbacks would obscure it.
        from .state import StateVector
        from ..core.exceptions import MicroArchError

        state = StateVector(self.num_qubits)
        cbits = {}
        pc = 0
        executed = 0
        elapsed = 0.0
        while True:
            if pc < 0 or pc >= len(program):
                raise MicroArchError("program counter %d out of range" % pc)
            if executed > max_instructions:
                raise MicroArchError(
                    "program exceeded %d instructions" % max_instructions)
            instruction = program[pc]
            executed += 1
            elapsed += self._duration(instruction)
            if instruction.kind == "halt":
                break
            if instruction.kind == "gate":
                op = instruction.op
                if op.permutation is not None:
                    state.apply_permutation(op.permutation, op.qubits)
                else:
                    state.apply_gate(op.resolved_matrix(), op.qubits)
                self.noise.apply_after_gate(state, op.qubits, rng)
                pc += 1
            elif instruction.kind == "measure":
                op = instruction.op
                raw = state.measure(op.qubit, rng=rng)
                cbits[op.cbit] = self.noise.corrupt_readout(raw, rng)
                pc += 1
            elif instruction.kind == "branch":
                cbit, expected = instruction.condition
                pc = instruction.target \
                    if cbits.get(cbit, 0) == expected else pc + 1
            else:
                raise MicroArchError("unknown instruction kind %r"
                                     % instruction.kind)
        from .microarch import ExecutionResult

        return ExecutionResult(cbits, state, executed, elapsed,
                               elapsed > self.coherence_ns)


def bell_fidelity_vs_noise(gate_errors, shots=400, rng=None):
    """Bell-pair correlation versus gate error rate.

    Returns ``[(gate_error, correlated_fraction)]``: the fraction of
    shots where both measured bits agree (1.0 for an ideal chip, 0.5 for
    a fully depolarized one).  A compact quantitative handle on the
    paper's coherence-challenge discussion.
    """
    from .circuit import QuantumCircuit
    from .microarch import assemble

    rng = make_rng(rng)
    kernel = QuantumCircuit(2, name="bell")
    kernel.h(0).cnot(0, 1)
    kernel.measure(0, "a").measure(1, "b")
    program = assemble(kernel)
    rows = []
    for gate_error in gate_errors:
        noisy = NoisyMicroArchitecture(
            2, DepolarizingNoise(gate_error=gate_error))
        agree = 0
        for _ in range(shots):
            result = noisy.execute(program, rng=rng)
            if result.bit("a") == result.bit("b"):
                agree += 1
        rows.append((float(gate_error), agree / shots))
    return rows
