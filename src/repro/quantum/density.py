"""Density-matrix backend: exact open-system evolution.

The trajectory-sampled noise of :mod:`repro.quantum.noise` is exact only
in expectation; this backend evolves the full density matrix so channel
effects are exact per run.  It exists to (a) cross-validate the
Monte-Carlo noise model and (b) let tests make sharp statements about
mixed states (purity, exact Bell correlation under depolarizing noise).

Scales to ~10 qubits (4^n complex entries) -- ample for the noise
studies of Section II.B.
"""

import numpy as np

from ..core.exceptions import QubitIndexError, QuantumError


class DensityMatrix:
    """An n-qubit mixed state with gate and channel application.

    Qubit convention matches :class:`repro.quantum.state.StateVector`:
    qubit k is bit k of the basis index.
    """

    def __init__(self, num_qubits, matrix=None):
        if num_qubits < 1:
            raise QuantumError("need at least one qubit")
        if num_qubits > 12:
            raise QuantumError(
                "refusing a %d-qubit dense density matrix" % num_qubits)
        self.num_qubits = int(num_qubits)
        dim = 2 ** self.num_qubits
        if matrix is None:
            self.matrix = np.zeros((dim, dim), dtype=complex)
            self.matrix[0, 0] = 1.0
        else:
            self.matrix = np.asarray(matrix, dtype=complex).reshape(dim,
                                                                    dim)
            trace = np.trace(self.matrix)
            if not np.isclose(trace, 1.0, atol=1e-8):
                raise QuantumError("density matrix trace %r != 1" % trace)

    @classmethod
    def from_statevector(cls, state):
        """Pure-state density matrix |psi><psi|."""
        amplitudes = state.amplitudes
        return cls(state.num_qubits,
                   np.outer(amplitudes, amplitudes.conj()))

    def _check_qubits(self, qubits):
        seen = set()
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise QubitIndexError("qubit %d out of range" % q)
            if q in seen:
                raise QubitIndexError("duplicate qubit %d" % q)
            seen.add(q)

    def _embed(self, operator, qubits):
        """Lift a k-qubit operator to the full Hilbert space."""
        qubits = list(qubits)
        self._check_qubits(qubits)
        k = len(qubits)
        n = self.num_qubits
        operator = np.asarray(operator, dtype=complex)
        if operator.shape != (2 ** k, 2 ** k):
            raise QuantumError("operator shape mismatch")
        full = np.zeros((2 ** n, 2 ** n), dtype=complex)
        others = [q for q in range(n) if q not in qubits]
        for row_local in range(2 ** k):
            for col_local in range(2 ** k):
                amplitude = operator[row_local, col_local]
                if amplitude == 0:
                    continue
                for rest in range(2 ** len(others)):
                    base = 0
                    for pos, q in enumerate(others):
                        base |= ((rest >> pos) & 1) << q
                    row = base
                    col = base
                    for pos, q in enumerate(qubits):
                        row |= ((row_local >> pos) & 1) << q
                        col |= ((col_local >> pos) & 1) << q
                    full[row, col] += amplitude
        return full

    def apply_unitary(self, unitary, qubits):
        """rho -> U rho U+ on the given qubits."""
        full = self._embed(unitary, qubits)
        self.matrix = full @ self.matrix @ full.conj().T
        return self

    def apply_kraus(self, operators, qubits):
        """General channel: rho -> sum_k K rho K+."""
        fulls = [self._embed(op, qubits) for op in operators]
        completeness = sum(f.conj().T @ f for f in fulls)
        if not np.allclose(completeness, np.eye(self.matrix.shape[0]),
                           atol=1e-8):
            raise QuantumError("Kraus operators do not sum to identity")
        self.matrix = sum(f @ self.matrix @ f.conj().T for f in fulls)
        return self

    def depolarize(self, qubit, probability):
        """Single-qubit depolarizing channel with error probability p.

        With probability p the qubit suffers a uniformly random Pauli --
        the exact channel matching
        :class:`repro.quantum.noise.DepolarizingNoise` trajectories.
        """
        if not 0.0 <= probability <= 1.0:
            raise QuantumError("probability out of range")
        from . import gates

        keep = np.sqrt(1.0 - probability) * np.eye(2)
        flip = np.sqrt(probability / 3.0)
        operators = [keep, flip * gates.X, flip * gates.Y, flip * gates.Z]
        return self.apply_kraus(operators, [qubit])

    def probabilities(self):
        """Diagonal of rho: computational-basis probabilities."""
        return np.real(np.diag(self.matrix)).copy()

    def purity(self):
        """Tr(rho^2): 1 for pure states, 1/2^n for the maximally mixed."""
        return float(np.real(np.trace(self.matrix @ self.matrix)))

    def expectation(self, operator, qubits):
        """<O> for an operator on the listed qubits."""
        full = self._embed(operator, qubits)
        return float(np.real(np.trace(full @ self.matrix)))

    def measure_probability(self, qubit, value):
        """Probability that measuring ``qubit`` yields ``value``."""
        self._check_qubits([qubit])
        probabilities = self.probabilities()
        indices = np.arange(len(probabilities))
        mask = ((indices >> qubit) & 1) == int(value)
        return float(probabilities[mask].sum())

    def __repr__(self):
        return "DensityMatrix(num_qubits=%d, purity=%.4f)" % (
            self.num_qubits, self.purity())


def bell_agreement_exact(gate_error):
    """Closed-form-by-simulation Bell agreement under depolarizing noise.

    Builds the Bell pair with a depolarizing channel (probability
    ``gate_error``) after each gate on each touched qubit -- the exact
    average of what :func:`repro.quantum.noise.bell_fidelity_vs_noise`
    estimates by sampling.  Returns P(measured bits agree).
    """
    from . import gates

    rho = DensityMatrix(2)
    rho.apply_unitary(gates.H, [0])
    rho.depolarize(0, gate_error)
    rho.apply_unitary(gates.CNOT, [0, 1])
    rho.depolarize(0, gate_error)
    rho.depolarize(1, gate_error)
    probabilities = rho.probabilities()
    return float(probabilities[0b00] + probabilities[0b11])
