"""Grover's search: the amplitude-amplification kernel.

Used here both as a standalone demonstration of quantum speedup on
unstructured search and as the matching engine inside the DNA similarity
application (Section II.C asks "whether the quantum approach can be used
to calculate the similarity between two different DNA sequences").
"""

import math

import numpy as np

from ...core.exceptions import QuantumError
from ...core.rngs import make_rng
from ..circuit import QuantumCircuit


def grover_iterations(num_qubits, num_marked=1):
    """Optimal iteration count ``round(pi/4 sqrt(N/M))`` (at least 1)."""
    if num_marked < 1:
        raise QuantumError("need at least one marked state")
    space = 2 ** num_qubits
    if num_marked >= space:
        raise QuantumError("cannot mark the whole space")
    angle = math.asin(math.sqrt(num_marked / space))
    iterations = int(round(math.pi / (4.0 * angle) - 0.5))
    return max(1, iterations)


def _phase_oracle_matrix(num_qubits, marked_states):
    diag = np.ones(2 ** num_qubits, dtype=complex)
    for state in marked_states:
        if not 0 <= state < 2 ** num_qubits:
            raise QuantumError("marked state %d out of range" % state)
        diag[state] = -1.0
    return np.diag(diag)


def _diffusion_matrix(num_qubits):
    dim = 2 ** num_qubits
    uniform = np.full((dim, dim), 2.0 / dim, dtype=complex)
    return uniform - np.eye(dim)


def grover_circuit(num_qubits, marked_states, iterations=None):
    """Build a Grover circuit marking the given basis states.

    The oracle and the diffusion operator enter the circuit as dense
    unitary blocks (chip macros); the compiler treats them like the
    modular-arithmetic macros of Shor.  For the small registers exercised
    in the benchmarks this is exact and keeps the focus on the amplitude
    dynamics.
    """
    marked = sorted(set(int(s) for s in marked_states))
    if not marked:
        raise QuantumError("need at least one marked state")
    if iterations is None:
        iterations = grover_iterations(num_qubits, len(marked))
    circuit = QuantumCircuit(num_qubits,
                             name="grover(n=%d,M=%d)" % (num_qubits, len(marked)))
    for q in range(num_qubits):
        circuit.h(q)
    oracle = _phase_oracle_matrix(num_qubits, marked)
    diffusion = _diffusion_matrix(num_qubits)
    qubits = list(range(num_qubits))
    for _ in range(iterations):
        circuit.unitary(oracle, qubits, name="oracle")
        circuit.unitary(diffusion, qubits, name="diffusion")
    return circuit


def grover_search(num_qubits, predicate, rng=None, shots=1):
    """Search for a basis state satisfying ``predicate(state) -> bool``.

    Classically enumerates the marked set to build the oracle (as any
    oracle constructor must), runs the optimal number of Grover
    iterations, and measures.  Returns ``(found_state, success,
    iterations)`` where ``success`` reports whether the measured state
    satisfies the predicate.
    """
    rng = make_rng(rng)
    space = 2 ** num_qubits
    marked = [s for s in range(space) if predicate(s)]
    if not marked:
        return None, False, 0
    if len(marked) >= space:
        return marked[0], True, 0
    iterations = grover_iterations(num_qubits, len(marked))
    circuit = grover_circuit(num_qubits, marked, iterations=iterations)
    state = circuit.statevector()
    best = None
    for _ in range(max(1, shots)):
        probs = state.probabilities()
        outcome = int(rng.choice(space, p=probs / probs.sum()))
        best = outcome
        if predicate(outcome):
            return outcome, True, iterations
    return best, False, iterations
