"""Application-layer algorithms for the quantum accelerator (Section II.C).

The paper names cryptography (Shor) and genomics (DNA similarity) as the
candidate killer applications; Grover search and the QFT are the reusable
kernels underneath them.
"""

from .dna import (
    DnaSimilarityResult,
    edit_distance,
    encode_sequence,
    grover_pattern_search,
    kmer_similarity,
    quantum_similarity,
)
from .grover import grover_circuit, grover_iterations, grover_search
from .oracles import (
    bernstein_vazirani_circuit,
    deutsch_jozsa_circuit,
    run_bernstein_vazirani,
    run_deutsch_jozsa,
)
from .qft import inverse_qft_circuit, qft_circuit
from .qpe import estimate_phase, phase_as_fraction, phase_estimation_circuit
from .shor import ShorResult, continued_fraction_convergents, shor_factor

__all__ = [
    "DnaSimilarityResult",
    "edit_distance",
    "encode_sequence",
    "grover_pattern_search",
    "kmer_similarity",
    "quantum_similarity",
    "grover_circuit",
    "grover_iterations",
    "grover_search",
    "bernstein_vazirani_circuit",
    "deutsch_jozsa_circuit",
    "run_bernstein_vazirani",
    "run_deutsch_jozsa",
    "inverse_qft_circuit",
    "qft_circuit",
    "estimate_phase",
    "phase_as_fraction",
    "phase_estimation_circuit",
    "ShorResult",
    "continued_fraction_convergents",
    "shor_factor",
]
