"""Quantum phase estimation as a standalone kernel.

Shor's order finding (:mod:`repro.quantum.algorithms.shor`) embeds phase
estimation; this module exposes it directly as a library utility: given
a unitary and one of its eigenstates, estimate the eigenphase to ``t``
bits.  Besides being useful on its own, it pins down the Fourier-basis
conventions the rest of the algorithm layer relies on.
"""

import fractions

import numpy as np

from ...core.exceptions import QuantumError
from ...core.rngs import make_rng
from ..circuit import QuantumCircuit
from ..gates import controlled, is_unitary
from .qft import inverse_qft_circuit


def phase_estimation_circuit(unitary, num_counting, eigenstate=None):
    """Build the QPE circuit for ``unitary`` with ``num_counting`` bits.

    Register layout: qubits ``0..t-1`` count; the work register follows.
    ``eigenstate`` (optional amplitude vector) is loaded onto the work
    register via a state-preparation macro; default is ``|0...0>``.
    Returns ``(circuit, t, work_width)``.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if not is_unitary(unitary):
        raise QuantumError("phase estimation needs a unitary matrix")
    dim = unitary.shape[0]
    work_width = int(np.log2(dim))
    if 2 ** work_width != dim:
        raise QuantumError("unitary dimension must be a power of two")
    if num_counting < 1:
        raise QuantumError("need at least one counting qubit")
    total = num_counting + work_width
    circuit = QuantumCircuit(total, name="qpe(t=%d)" % num_counting)
    work = list(range(num_counting, total))
    if eigenstate is not None:
        eigenstate = np.asarray(eigenstate, dtype=complex)
        if eigenstate.shape != (dim,):
            raise QuantumError("eigenstate length mismatch")
        norm = np.linalg.norm(eigenstate)
        if abs(norm - 1.0) > 1e-8:
            raise QuantumError("eigenstate must be normalized")
        # complete to a unitary whose first column is the eigenstate
        seed = np.random.default_rng(0).normal(size=(dim, dim)) \
            + 1j * np.random.default_rng(1).normal(size=(dim, dim))
        seed[:, 0] = eigenstate
        q_matrix, r_matrix = np.linalg.qr(seed)
        q_matrix[:, 0] *= r_matrix[0, 0] / abs(r_matrix[0, 0])
        circuit.unitary(q_matrix, work, name="load_eigenstate")
    for qubit in range(num_counting):
        circuit.h(qubit)
    power = unitary
    for k in range(num_counting):
        circuit.unitary(controlled(power), [k] + work,
                        name="c-U^%d" % (2 ** k))
        power = power @ power
    iqft = inverse_qft_circuit(num_counting)
    for op in iqft.ops:
        circuit.append(op)
    for qubit in range(num_counting):
        circuit.measure(qubit, "c%d" % qubit)
    return circuit, num_counting, work_width


def estimate_phase(unitary, eigenstate, num_counting=6, rng=None):
    """Estimate the eigenphase ``phi`` in ``U|psi> = e^{2 pi i phi}|psi>``.

    Returns ``(phi_estimate, raw_measurement)`` with ``phi`` in [0, 1);
    resolution is ``2^-num_counting``.
    """
    rng = make_rng(rng)
    circuit, t, _w = phase_estimation_circuit(unitary, num_counting,
                                              eigenstate=eigenstate)
    _state, cbits = circuit.run(rng=rng)
    measured = 0
    for qubit in range(t):
        measured |= cbits["c%d" % qubit] << qubit
    return measured / 2 ** t, measured


def phase_as_fraction(phi, max_denominator=64):
    """Round an estimated phase to the nearest small fraction."""
    return fractions.Fraction(phi).limit_denominator(max_denominator)
