"""DNA sequence similarity on the quantum accelerator (Section II.C).

The paper motivates genomics as a quantum killer application: "we have to
investigate whether the quantum approach can be used to calculate the
similarity between two different DNA sequences."  This module provides:

* :func:`encode_sequence` -- 2-bit encoding of {A, C, G, T} into a quantum
  register (the paper's "entire inputted data-set ... encoded
  simultaneously as a superposition").
* :func:`quantum_similarity` -- a SWAP-test similarity kernel: amplitude-
  encode both sequences' k-mer spectra and estimate their state overlap,
  executed through the accelerator stack.
* classical baselines: :func:`edit_distance` (Levenshtein) and
  :func:`kmer_similarity` (cosine similarity of k-mer counts), against
  which the quantum score is validated for rank agreement.
"""

import math

import numpy as np

from ...core.exceptions import QuantumError
from ...core.rngs import make_rng
from ..circuit import QuantumCircuit
from ..gates import controlled, SWAP

_BASES = "ACGT"
_BASE_BITS = {"A": 0, "C": 1, "G": 2, "T": 3}


def encode_sequence(sequence):
    """Encode a DNA string into an integer via 2 bits per base (A=00 ...).

    Returns ``(value, num_bits)``; base 0 of the sequence occupies the two
    least-significant bits.
    """
    value = 0
    for position, base in enumerate(sequence.upper()):
        if base not in _BASE_BITS:
            raise QuantumError("invalid DNA base %r" % base)
        value |= _BASE_BITS[base] << (2 * position)
    return value, 2 * len(sequence)


def kmer_spectrum(sequence, k=3):
    """Normalized k-mer count vector over the 4^k k-mer alphabet."""
    sequence = sequence.upper()
    if len(sequence) < k:
        raise QuantumError("sequence shorter than k=%d" % k)
    for base in sequence:
        if base not in _BASE_BITS:
            raise QuantumError("invalid DNA base %r" % base)
    counts = np.zeros(4 ** k)
    for start in range(len(sequence) - k + 1):
        index = 0
        for offset in range(k):
            index = index * 4 + _BASE_BITS[sequence[start + offset]]
        counts[index] += 1.0
    norm = np.linalg.norm(counts)
    if norm == 0.0:
        raise QuantumError("empty k-mer spectrum")
    return counts / norm


def kmer_similarity(seq_a, seq_b, k=3):
    """Cosine similarity of the two k-mer spectra (classical baseline)."""
    return float(np.dot(kmer_spectrum(seq_a, k), kmer_spectrum(seq_b, k)))


def edit_distance(seq_a, seq_b):
    """Levenshtein distance (classical baseline)."""
    if len(seq_a) < len(seq_b):
        seq_a, seq_b = seq_b, seq_a
    previous = list(range(len(seq_b) + 1))
    for i, char_a in enumerate(seq_a, start=1):
        current = [i]
        for j, char_b in enumerate(seq_b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (char_a != char_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


class DnaSimilarityResult:
    """SWAP-test similarity estimate plus resource accounting.

    Attributes
    ----------
    overlap : float
        Estimated ``|<a|b>|^2`` of the amplitude-encoded spectra.
    similarity : float
        ``sqrt(overlap)`` -- comparable to cosine similarity.
    shots : int
        Measurement repetitions used.
    p_zero : float
        Raw ancilla-zero frequency (``(1 + overlap) / 2`` ideally).
    num_qubits : int
        Total register width used by the kernel.
    """

    def __init__(self, overlap, shots, p_zero, num_qubits):
        self.overlap = float(overlap)
        self.shots = int(shots)
        self.p_zero = float(p_zero)
        self.num_qubits = int(num_qubits)

    @property
    def similarity(self):
        """Overlap mapped to an amplitude-level similarity score."""
        return math.sqrt(max(0.0, self.overlap))

    def __repr__(self):
        return "DnaSimilarityResult(similarity=%.4f, shots=%d)" % (
            self.similarity, self.shots)


def _amplitude_prepare(circuit, amplitudes, qubits):
    """Append a state-preparation macro loading ``amplitudes`` on ``qubits``.

    Builds a unitary whose first column is the amplitude vector via
    Householder-completed orthonormal basis (QR on a seeded matrix).
    """
    dim = 2 ** len(qubits)
    target = np.zeros(dim, dtype=complex)
    target[:len(amplitudes)] = amplitudes
    target /= np.linalg.norm(target)
    # Complete the target column to an orthonormal basis via QR on a
    # deterministic full-rank seed matrix whose first column is the target.
    seed = np.random.default_rng(0).normal(size=(dim, dim)) \
        + 1j * np.random.default_rng(1).normal(size=(dim, dim))
    seed[:, 0] = target
    q_matrix, r_matrix = np.linalg.qr(seed)
    # QR leaves column 0 equal to the target up to the phase of r[0, 0];
    # rescale that column so it is exactly the target.
    q_matrix[:, 0] *= r_matrix[0, 0] / abs(r_matrix[0, 0])
    circuit.unitary(q_matrix, qubits, name="load_spectrum")
    return circuit


def swap_test_circuit(amplitudes_a, amplitudes_b):
    """Build the SWAP-test circuit comparing two amplitude vectors.

    Register layout: ancilla is qubit 0; register A next; register B last.
    Measures only the ancilla.
    """
    dim = max(len(amplitudes_a), len(amplitudes_b))
    width = max(1, int(math.ceil(math.log2(dim))))
    total = 1 + 2 * width
    circuit = QuantumCircuit(total, name="swap_test")
    reg_a = list(range(1, 1 + width))
    reg_b = list(range(1 + width, 1 + 2 * width))
    _amplitude_prepare(circuit, np.asarray(amplitudes_a, dtype=complex), reg_a)
    _amplitude_prepare(circuit, np.asarray(amplitudes_b, dtype=complex), reg_b)
    circuit.h(0)
    cswap = controlled(SWAP)
    for qa, qb in zip(reg_a, reg_b):
        circuit.unitary(cswap, [0, qa, qb], name="cswap")
    circuit.h(0)
    circuit.measure(0, "ancilla")
    return circuit


def quantum_similarity(seq_a, seq_b, k=3, shots=2048, rng=None):
    """Estimate DNA similarity with the SWAP test on k-mer spectra.

    Amplitude-encodes both sequences' normalized k-mer spectra (the
    quantum data-parallel encoding the paper highlights: 4^k spectrum
    entries in ``2k`` qubits) and runs a SWAP test for ``shots``
    repetitions.  Returns a :class:`DnaSimilarityResult`.
    """
    rng = make_rng(rng)
    spectrum_a = kmer_spectrum(seq_a, k)
    spectrum_b = kmer_spectrum(seq_b, k)
    circuit = swap_test_circuit(spectrum_a, spectrum_b)
    # The SWAP test's ancilla distribution is fixed by the state overlap;
    # compute it once and draw the shots classically (exact and fast).
    measure_free = QuantumCircuit(circuit.num_qubits, name="swap_test_probe")
    for op in circuit.ops:
        if hasattr(op, "cbit"):
            continue
        measure_free.append(op)
    state = measure_free.statevector()
    ancilla_zero_prob = state.probability_of(0, 0)
    zeros = int(np.sum(rng.random(shots) < ancilla_zero_prob))
    p_zero = zeros / shots
    overlap = max(0.0, 2.0 * p_zero - 1.0)
    return DnaSimilarityResult(overlap, shots, p_zero, circuit.num_qubits)


def grover_pattern_search(genome, pattern, rng=None):
    """Locate a pattern in a genome with Grover search over positions.

    The paper notes DNA analysis needs "both character-based and
    sequence-based correlation analyses"; this is the character-based
    half: the search space is the set of alignment positions, the oracle
    marks exact matches, and Grover amplifies them quadratically faster
    than linear scanning (O(sqrt(N)) oracle calls vs O(N)).

    Returns ``(position, iterations, num_matches)``; ``position`` is
    ``None`` when the pattern does not occur.
    """
    from .grover import grover_search

    genome = genome.upper()
    pattern = pattern.upper()
    if not pattern or len(pattern) > len(genome):
        raise QuantumError("pattern must be non-empty and fit the genome")
    positions = len(genome) - len(pattern) + 1
    num_qubits = max(1, (positions - 1).bit_length())

    def matches(index):
        if index >= positions:
            return False
        return genome[index:index + len(pattern)] == pattern

    num_matches = sum(1 for index in range(positions) if matches(index))
    found, success, iterations = grover_search(num_qubits, matches,
                                               rng=rng, shots=3)
    if not success:
        return None, iterations, num_matches
    return found, iterations, num_matches


def random_dna(length, rng=None):
    """Uniform random DNA string of the given length."""
    rng = make_rng(rng)
    return "".join(rng.choice(list(_BASES)) for _ in range(length))


def mutate(sequence, num_mutations, rng=None):
    """Apply point substitutions to a sequence (controlled divergence)."""
    rng = make_rng(rng)
    sequence = list(sequence.upper())
    if num_mutations > len(sequence):
        raise QuantumError("more mutations than bases")
    positions = rng.choice(len(sequence), size=num_mutations, replace=False)
    for position in positions:
        alternatives = [b for b in _BASES if b != sequence[position]]
        sequence[position] = str(rng.choice(alternatives))
    return "".join(sequence)
