"""Shor's factoring algorithm (Section II.C's cryptography application).

"algorithms such as Shor's factorization have shown that a quantum
computer has the potential to break any RSA-based encryption" -- this
module implements the full pipeline:

1. classical reductions (even / prime-power / lucky-gcd shortcuts),
2. quantum order finding: phase estimation over the unitary
   ``U_a |x> = |a x mod N>`` built from permutation macros,
3. classical continued-fraction post-processing of the measured phase,
4. factor extraction from the recovered order.

The modular-multiplication unitaries are permutation macros (see
``StateVector.apply_permutation``): dense matrices for them would be
astronomically wasteful, and real proposals compile them from arithmetic
circuits anyway -- the *instruction stream* shape is preserved.
"""

import fractions
import math

import numpy as np

from ...core import cache as result_cache
from ...core import parallel, resilience, telemetry
from ...core.exceptions import QuantumError
from ...core.rngs import make_rng, spawn_rngs
from ..circuit import QuantumCircuit
from .qft import inverse_qft_circuit


def continued_fraction_convergents(numerator, denominator):
    """All convergents p/q of ``numerator/denominator`` as Fraction list."""
    convergents = []
    coefficients = []
    num, den = numerator, denominator
    while den:
        quotient = num // den
        coefficients.append(quotient)
        num, den = den, num - quotient * den
        frac = fractions.Fraction(0)
        for coefficient in reversed(coefficients):
            frac = fractions.Fraction(1, 1) / frac if frac else fractions.Fraction(0)
            frac = coefficient + frac
        convergents.append(fractions.Fraction(frac))
    return convergents


def _modmul_permutation(multiplier, modulus, num_bits):
    """Permutation table for ``x -> multiplier * x mod modulus``.

    States ``>= modulus`` (invalid register values) are left as a shifted
    identity so the table remains a proper permutation.
    """
    size = 2 ** num_bits
    table = np.arange(size, dtype=np.int64)
    for x in range(modulus):
        table[x] = (multiplier * x) % modulus
    # ensure bijectivity: values >= modulus map to themselves (identity),
    # which they already do; the sub-table on [0, modulus) is a bijection
    # because gcd(multiplier, modulus) == 1.
    return table


def order_finding_circuit(a, modulus, num_count_qubits=None):
    """Phase-estimation circuit for the order of ``a`` modulo ``modulus``.

    Layout: qubits ``[0, t)`` are the counting register; qubits
    ``[t, t + n)`` are the work register initialized to ``|1>``.
    Returns ``(circuit, t, n)``.
    """
    if math.gcd(a, modulus) != 1:
        raise QuantumError("a=%d shares a factor with N=%d" % (a, modulus))
    n = max(1, (modulus - 1).bit_length())
    t = num_count_qubits if num_count_qubits is not None else 2 * n
    circuit = QuantumCircuit(t + n, name="order_finding(a=%d,N=%d)" % (a, modulus))
    # work register |1>
    circuit.x(t)
    # superpose the counting register
    for q in range(t):
        circuit.h(q)
    # controlled U^{2^k}: permutation macro controlled on counting qubit k.
    work = list(range(t, t + n))
    for k in range(t):
        power = pow(a, 2 ** k, modulus)
        table = _modmul_permutation(power, modulus, n)
        # controlled permutation over [count_k] + work: when the control
        # bit (local LSB) is 0 identity, when 1 apply the table.
        size = 2 ** (n + 1)
        controlled = np.arange(size, dtype=np.int64)
        ones = np.arange(1, size, 2)  # local states with control bit set
        controlled[ones] = table[(ones - 1) // 2] * 2 + 1
        circuit.permutation(controlled, [k] + work,
                            name="c-modmul(%d^%d)" % (a, 2 ** k))
    # inverse QFT on the counting register
    iqft = inverse_qft_circuit(t)
    for op in iqft.ops:
        circuit.append(op)
    for q in range(t):
        circuit.measure(q, "c%d" % q)
    return circuit, t, n


def _order_from_measurement(a, modulus, measured, t):
    """Continued-fraction post-processing of one phase reading."""
    if measured == 0:
        return None
    for convergent in continued_fraction_convergents(measured, 2 ** t):
        r = convergent.denominator
        if r == 0 or r >= modulus:
            continue
        if pow(a, r, modulus) == 1:
            return r
    return None


def _order_attempt(payload):
    """Worker entry point: one phase-estimation attempt for ``a mod N``."""
    a, modulus, rng = payload
    telemetry.counter("quantum.shor.order_finding_attempts").inc()
    with telemetry.span("quantum.shor.order_finding", a=a, modulus=modulus):
        circuit, t, _n = order_finding_circuit(a, modulus)
        _state, cbits = circuit.run(rng=rng)
        measured = 0
        for q in range(t):
            measured |= cbits["c%d" % q] << q
    return measured, t


def _reading_is_sane(value):
    """Validate hook: a phase reading is a pair of non-negative ints."""
    measured, t = value
    return (isinstance(measured, int) and isinstance(t, int)
            and measured >= 0 and t > 0)


def _encode_reading(value):
    return [int(value[0]), int(value[1])]


def _decode_reading(doc):
    return int(doc[0]), int(doc[1])


def find_order(a, modulus, rng=None, max_attempts=10, runner=None,
               workers=None, timeout=None, retry=None, checkpoint=None,
               resume_from=None, checkpoint_every=1, cache=None):
    """Quantum order finding with classical post-processing.

    ``runner(circuit) -> int`` executes the circuit and returns the
    measured counting-register value; the default samples the library's
    reference simulator once.  Returns the order ``r`` or ``None`` after
    ``max_attempts`` failed phase readings.

    With ``workers > 1`` (and no custom ``runner``), the attempts run
    concurrently on the parallel engine, each with its own child
    generator spawned from ``rng``; phase readings are post-processed in
    attempt order and the first usable order wins, so the result is a
    deterministic function of the seed alone, whatever the worker count.
    ``timeout``/``retry`` bound and re-dispatch individual attempts;
    ``checkpoint`` (a path) persists finished phase readings.  The
    checkpoint is *rolling*: its metadata pins ``(a, modulus, RNG
    state)``, and a run for a different base simply restarts the file
    -- which lets :func:`shor_factor` thread one checkpoint path
    through every base it tries.  ``cache`` (None / False / path /
    :class:`~repro.core.cache.ResultCache`) reuses per-attempt phase
    readings on the parallel branch, content-addressed by ``(a,
    modulus, max_attempts, RNG fingerprint)``; the serial branch shares
    one mutable generator across attempts and is never cached.
    """
    workers = parallel.resolve_workers(workers)
    resilient = (timeout is not None or retry is not None
                 or checkpoint is not None or resume_from is not None)
    if runner is None and (parallel.wants_fanout(workers) or resilient):
        # Fingerprint the RNG before spawn_rngs advances it.
        meta = {"a": int(a), "modulus": int(modulus),
                "max_attempts": int(max_attempts),
                "rng": resilience.rng_fingerprint(rng)}
        ckpt = None
        if checkpoint is not None or resume_from is not None:
            ckpt = resilience.Checkpointer(
                checkpoint if checkpoint is not None else resume_from,
                "shor-order", meta=meta, encode=_encode_reading,
                decode=_decode_reading, every=checkpoint_every,
                resume_from=resume_from, restart_on_mismatch=True)
        spec = result_cache.spec_for(cache, "shor-order", meta,
                                     encode=_encode_reading,
                                     decode=_decode_reading)
        rngs = spawn_rngs(rng, max_attempts)
        tasks = [(a, modulus, attempt_rng) for attempt_rng in rngs]
        readings = parallel.ParallelMap(workers=workers,
                                        timeout=timeout).map(
            _order_attempt, tasks, retry=retry, validate=_reading_is_sane,
            checkpoint=ckpt, cache=spec)
        for measured, t in readings:
            r = _order_from_measurement(a, modulus, measured, t)
            if r is not None:
                return r
        return None
    rng = make_rng(rng)

    def default_runner(circuit, t):
        _state, cbits = circuit.run(rng=rng)
        value = 0
        for q in range(t):
            value |= cbits["c%d" % q] << q
        return value

    for _ in range(max_attempts):
        telemetry.counter("quantum.shor.order_finding_attempts").inc()
        with telemetry.span("quantum.shor.order_finding", a=a,
                            modulus=modulus):
            circuit, t, _n = order_finding_circuit(a, modulus)
            if runner is not None:
                measured = runner(circuit)
            else:
                measured = default_runner(circuit, t)
        r = _order_from_measurement(a, modulus, measured, t)
        if r is not None:
            return r
    return None


class ShorResult:
    """Outcome of a full factoring run.

    Attributes
    ----------
    n : int
        The number factored.
    factors : tuple or None
        Non-trivial factor pair, or None on failure.
    method : str
        "classical-shortcut" or "quantum-order-finding".
    attempts : int
        Number of random bases tried.
    orders_found : list
        The (a, r) pairs recovered along the way.
    """

    def __init__(self, n, factors, method, attempts, orders_found):
        self.n = n
        self.factors = factors
        self.method = method
        self.attempts = attempts
        self.orders_found = list(orders_found)

    @property
    def succeeded(self):
        """True when a non-trivial factorization was produced."""
        return self.factors is not None

    def __repr__(self):
        return "ShorResult(n=%d, factors=%r, method=%s)" % (
            self.n, self.factors, self.method)


def _encode_shor_result(result):
    return {"n": int(result.n),
            "factors": None if result.factors is None
            else [int(factor) for factor in result.factors],
            "method": str(result.method),
            "attempts": int(result.attempts),
            "orders_found": [[int(a), int(r)]
                             for a, r in result.orders_found]}


def _decode_shor_result(doc):
    factors = None if doc["factors"] is None else tuple(doc["factors"])
    return ShorResult(doc["n"], factors, doc["method"], doc["attempts"],
                      [tuple(pair) for pair in doc["orders_found"]])


def _perfect_power(n):
    """Return (base, exponent) when n = base**exponent with exponent > 1."""
    for exponent in range(2, n.bit_length() + 1):
        base = round(n ** (1.0 / exponent))
        for candidate in (base - 1, base, base + 1):
            if candidate > 1 and candidate ** exponent == n:
                return candidate, exponent
    return None


def shor_factor(n, rng=None, max_base_attempts=20, workers=None,
                timeout=None, retry=None, checkpoint=None,
                checkpoint_every=1, cache=None):
    """Factor ``n`` via Shor's algorithm; returns a :class:`ShorResult`.

    Classical shortcuts handle even numbers and perfect powers; otherwise
    random bases are tried through quantum order finding until an even
    order with ``a^{r/2} != -1 (mod n)`` yields factors.  ``workers``,
    ``timeout``, ``retry``, and ``checkpoint`` forward to
    :func:`find_order` (deterministic given the seed); the checkpoint
    path is shared by every base as a rolling file -- re-running after a
    kill with the same seed resumes the interrupted base's remaining
    attempts.  ``cache`` (None / False / path /
    :class:`~repro.core.cache.ResultCache`) forwards to
    :func:`find_order` and additionally caches the whole
    :class:`ShorResult` for integer seeds, so a warm repeat of a seeded
    factorization skips every circuit execution.
    """
    if n < 4:
        raise QuantumError("n must be a composite >= 4")
    registry = telemetry.get_registry()
    if registry.enabled:
        registry.counter("quantum.shor.factorizations").inc()
        with telemetry.span("quantum.shor.factor", n=n) as factor_span:
            result = _shor_factor(n, rng, max_base_attempts, workers,
                                  timeout, retry, checkpoint,
                                  checkpoint_every, cache)
            factor_span.set_attr("method", result.method)
            factor_span.set_attr("succeeded", result.succeeded)
        return result
    return _shor_factor(n, rng, max_base_attempts, workers, timeout, retry,
                        checkpoint, checkpoint_every, cache)


def _shor_factor(n, rng, max_base_attempts, workers=None, timeout=None,
                 retry=None, checkpoint=None, checkpoint_every=1,
                 cache=None):
    spec = None
    if result_cache.cacheable_seed(rng):
        # find_order picks its serial or parallel branch from the
        # worker/resilience arguments, and the two branches draw
        # different streams -- the branch is part of the fingerprint.
        resilient = (timeout is not None or retry is not None
                     or checkpoint is not None)
        meta = {"n": int(n), "max_base_attempts": int(max_base_attempts),
                "parallel": parallel.wants_fanout(workers) or resilient,
                "rng": resilience.rng_fingerprint(rng)}
        spec = result_cache.spec_for(cache, "shor-factor", meta,
                                     encode=_encode_shor_result,
                                     decode=_decode_shor_result)
    if spec is not None:
        hit, cached = spec.lookup()
        if hit:
            return cached
    result = _shor_factor_compute(n, rng, max_base_attempts, workers,
                                  timeout, retry, checkpoint,
                                  checkpoint_every, cache)
    if spec is not None:
        spec.store(result)
    return result


def _shor_factor_compute(n, rng, max_base_attempts, workers, timeout,
                         retry, checkpoint, checkpoint_every, cache):
    if n % 2 == 0:
        return ShorResult(n, (2, n // 2), "classical-shortcut", 0, [])
    power = _perfect_power(n)
    if power is not None:
        base, exponent = power
        return ShorResult(n, (base, n // base), "classical-shortcut", 0, [])
    rng = make_rng(rng)
    orders = []
    for attempt in range(1, max_base_attempts + 1):
        a = int(rng.integers(2, n - 1))
        shared = math.gcd(a, n)
        if shared > 1:
            return ShorResult(n, (shared, n // shared),
                              "classical-shortcut", attempt, orders)
        r = find_order(a, n, rng=rng, workers=workers, timeout=timeout,
                       retry=retry, checkpoint=checkpoint,
                       checkpoint_every=checkpoint_every, cache=cache)
        if r is None:
            continue
        orders.append((a, r))
        if r % 2 != 0:
            continue
        half_power = pow(a, r // 2, n)
        if half_power == n - 1:
            continue
        p = math.gcd(half_power - 1, n)
        q = math.gcd(half_power + 1, n)
        for factor in (p, q):
            if 1 < factor < n:
                return ShorResult(n, (factor, n // factor),
                                  "quantum-order-finding", attempt, orders)
    return ShorResult(n, None, "quantum-order-finding",
                      max_base_attempts, orders)
