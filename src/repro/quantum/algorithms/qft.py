"""Quantum Fourier transform circuits.

The QFT is the workhorse kernel behind Shor's period finding.  Circuits
follow the textbook construction: Hadamard plus controlled phases, then a
qubit-order reversal implemented with SWAPs (omittable when the caller
accounts for bit reversal classically, as Shor's post-processing does).
"""

import math

from ..circuit import QuantumCircuit


def qft_circuit(num_qubits, with_swaps=True, name="qft"):
    """Build the QFT on ``num_qubits`` qubits.

    Convention: the QFT maps ``|x>`` to ``(1/sqrt(2^n)) sum_y exp(2 pi i
    x y / 2^n) |y>`` with qubit 0 as the least-significant bit of ``x``.

    Parameters
    ----------
    num_qubits : int
        Register width.
    with_swaps : bool
        Append the final qubit-reversal SWAP network (default).  Without
        it the output register is bit-reversed.
    """
    circuit = QuantumCircuit(num_qubits, name=name)
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for distance, control in enumerate(reversed(range(target)), start=1):
            circuit.cp(control, target, math.pi / (2 ** distance))
    if with_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    return circuit


def inverse_qft_circuit(num_qubits, with_swaps=True, name="iqft"):
    """Build the inverse QFT (adjoint of :func:`qft_circuit`)."""
    circuit = QuantumCircuit(num_qubits, name=name)
    if with_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    for target in range(num_qubits):
        # conjugated controlled phases; they are diagonal and commute,
        # so any order within a target is equivalent
        for control in range(target):
            distance = target - control
            circuit.cp(control, target, -math.pi / (2 ** distance))
        circuit.h(target)
    return circuit
