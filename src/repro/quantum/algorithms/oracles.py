"""Textbook oracle algorithms: Deutsch-Jozsa and Bernstein-Vazirani.

Section II.B stresses "proof-of-concept quantum algorithms and their
study with respect to their theoretical complexity" as the field's
motor.  These two are the canonical proofs of concept -- and, unlike the
macro-based Shor/Grover kernels, their oracles compile entirely into
primitive CNOT/X/Z gates, so they exercise the *whole* Fig. 2 stack
including SWAP routing on restricted topologies:

* Deutsch-Jozsa decides constant-vs-balanced in one oracle call
  (classically: 2^(n-1) + 1 calls in the worst case),
* Bernstein-Vazirani recovers a hidden dot-product string in one call
  (classically: n calls).
"""

from ...core.exceptions import QuantumError
from ...core.rngs import make_rng
from ..circuit import QuantumCircuit


def bernstein_vazirani_circuit(secret, num_bits=None):
    """Build the BV circuit for hidden string ``secret``.

    Register layout: qubits ``0..n-1`` are the query register, qubit
    ``n`` is the phase ancilla.  The oracle ``f(x) = secret . x`` is a
    fan of CNOTs from the secret's set bits into the ancilla -- pure
    primitives.  Measuring the query register yields ``secret`` with
    certainty on an ideal chip.
    """
    if num_bits is None:
        num_bits = max(1, secret.bit_length())
    if secret >= (1 << num_bits):
        raise QuantumError("secret does not fit in %d bits" % num_bits)
    circuit = QuantumCircuit(num_bits + 1,
                             name="bv(%d,n=%d)" % (secret, num_bits))
    ancilla = num_bits
    circuit.x(ancilla)
    for qubit in range(num_bits + 1):
        circuit.h(qubit)
    for bit in range(num_bits):
        if (secret >> bit) & 1:
            circuit.cnot(bit, ancilla)
    for qubit in range(num_bits):
        circuit.h(qubit)
    for qubit in range(num_bits):
        circuit.measure(qubit, "b%d" % qubit)
    return circuit


def run_bernstein_vazirani(secret, num_bits=None, accelerator=None,
                           rng=None):
    """Recover the hidden string through the accelerator stack.

    Returns ``(recovered_secret, report)``.  One shot suffices on the
    ideal chip; the routed circuit is verified against the stack's
    semantics by construction (its result must equal ``secret``).
    """
    from ..accelerator import QuantumAccelerator

    rng = make_rng(rng)
    circuit = bernstein_vazirani_circuit(secret, num_bits=num_bits)
    accelerator = accelerator or QuantumAccelerator(circuit.num_qubits)
    result, report = accelerator.execute_kernel(circuit, shots=16,
                                                rng=rng)
    value, _count = result.most_common(1)[0]
    return value, report


def deutsch_jozsa_circuit(oracle_kind, num_bits, secret=0):
    """Build a DJ circuit for a constant or balanced oracle.

    ``oracle_kind`` is "constant0", "constant1", or "balanced" (the
    balanced family is the BV dot-product with non-zero ``secret``).
    """
    if oracle_kind not in ("constant0", "constant1", "balanced"):
        raise QuantumError("unknown oracle kind %r" % oracle_kind)
    if oracle_kind == "balanced" and secret == 0:
        raise QuantumError("balanced oracle needs a non-zero secret")
    circuit = QuantumCircuit(num_bits + 1,
                             name="dj(%s,n=%d)" % (oracle_kind, num_bits))
    ancilla = num_bits
    circuit.x(ancilla)
    for qubit in range(num_bits + 1):
        circuit.h(qubit)
    if oracle_kind == "constant1":
        circuit.x(ancilla)
    elif oracle_kind == "balanced":
        for bit in range(num_bits):
            if (secret >> bit) & 1:
                circuit.cnot(bit, ancilla)
    for qubit in range(num_bits):
        circuit.h(qubit)
    for qubit in range(num_bits):
        circuit.measure(qubit, "b%d" % qubit)
    return circuit


def run_deutsch_jozsa(oracle_kind, num_bits, secret=0, accelerator=None,
                      rng=None):
    """Decide constant vs balanced with a single oracle evaluation.

    Returns ``("constant"|"balanced", report)``: an all-zero query
    readout means constant, anything else balanced -- with certainty on
    the ideal chip.
    """
    from ..accelerator import QuantumAccelerator

    rng = make_rng(rng)
    circuit = deutsch_jozsa_circuit(oracle_kind, num_bits, secret=secret)
    accelerator = accelerator or QuantumAccelerator(circuit.num_qubits)
    result, report = accelerator.execute_kernel(circuit, shots=16,
                                                rng=rng)
    value, _count = result.most_common(1)[0]
    verdict = "constant" if value == 0 else "balanced"
    return verdict, report
