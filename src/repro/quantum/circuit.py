"""Quantum circuit intermediate representation.

The circuit IR sits between the algorithm layer and the compiler in the
Fig. 2 stack: algorithms emit circuits; compiler passes rewrite them; the
micro-architecture consumes the lowered instruction stream.

Two operation kinds exist:

* :class:`GateOp` -- a named unitary from the ISA (or an explicit matrix /
  permutation for algorithm-level blocks such as modular multiplication).
* :class:`MeasureOp` -- projective measurement of one qubit into a named
  classical bit.
"""

import numpy as np

from ..core.exceptions import QuantumError, QubitIndexError
from ..core.rngs import make_rng
from . import gates
from .state import StateVector


class GateOp:
    """A unitary operation on one or more qubits.

    Exactly one of the following backs the operation:

    * ``name`` in the ISA registry (with ``params``),
    * an explicit ``matrix``,
    * a ``permutation`` array over the operand subspace.
    """

    __slots__ = ("name", "qubits", "params", "matrix", "permutation")

    def __init__(self, name, qubits, params=(), matrix=None, permutation=None):
        self.name = name
        self.qubits = tuple(int(q) for q in qubits)
        self.params = tuple(float(p) for p in params)
        self.matrix = None if matrix is None else np.asarray(matrix, dtype=complex)
        self.permutation = None if permutation is None \
            else np.asarray(permutation, dtype=np.int64)
        if self.matrix is None and self.permutation is None:
            # must resolve from the ISA
            arity = gates.gate_arity(name)
            if arity != len(self.qubits):
                raise QuantumError(
                    "gate %r wants %d qubits, got %d"
                    % (name, arity, len(self.qubits))
                )

    @property
    def is_primitive(self):
        """True when the op is a named ISA gate (executable by the uarch)."""
        return self.matrix is None and self.permutation is None

    def resolved_matrix(self):
        """The dense unitary for this op (built on demand)."""
        if self.matrix is not None:
            return self.matrix
        if self.permutation is not None:
            dim = len(self.permutation)
            matrix = np.zeros((dim, dim), dtype=complex)
            matrix[self.permutation, np.arange(dim)] = 1.0
            return matrix
        return gates.gate_matrix(self.name, self.params)

    def remapped(self, layout):
        """Return a copy with qubits translated through ``layout`` (dict)."""
        return GateOp(self.name, [layout[q] for q in self.qubits],
                      params=self.params, matrix=self.matrix,
                      permutation=self.permutation)

    def __repr__(self):
        if self.params:
            return "GateOp(%s%s, qubits=%s)" % (
                self.name, list(self.params), list(self.qubits))
        return "GateOp(%s, qubits=%s)" % (self.name, list(self.qubits))


class MeasureOp:
    """Projective measurement of ``qubit`` into classical bit ``cbit``."""

    __slots__ = ("qubit", "cbit")

    def __init__(self, qubit, cbit):
        self.qubit = int(qubit)
        self.cbit = str(cbit)

    def remapped(self, layout):
        """Return a copy with the qubit translated through ``layout``."""
        return MeasureOp(layout[self.qubit], self.cbit)

    def __repr__(self):
        return "MeasureOp(q%d -> %s)" % (self.qubit, self.cbit)


class QuantumCircuit:
    """An ordered list of operations on ``num_qubits`` qubits.

    Provides fluent builders for the ISA gates plus matrix/permutation
    escape hatches for algorithm-level blocks, and a reference simulator
    (:meth:`run`) used as ground truth by the compiler's equivalence
    checks.
    """

    def __init__(self, num_qubits, name="circuit"):
        if num_qubits < 1:
            raise QuantumError("circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = str(name)
        self.ops = []

    # -- builders -----------------------------------------------------------

    def _check(self, qubits):
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise QubitIndexError(
                    "qubit %d out of range for %d-qubit circuit"
                    % (q, self.num_qubits)
                )

    def append(self, op):
        """Append a prepared :class:`GateOp` / :class:`MeasureOp`."""
        if isinstance(op, GateOp):
            self._check(op.qubits)
        elif isinstance(op, MeasureOp):
            self._check([op.qubit])
        else:
            raise TypeError("expected GateOp or MeasureOp, got %r" % (op,))
        self.ops.append(op)
        return self

    def gate(self, name, *qubits, params=()):
        """Append a named ISA gate."""
        self._check(qubits)
        self.ops.append(GateOp(name, qubits, params=params))
        return self

    def i(self, q):
        """Identity (explicit no-op used for timing studies)."""
        return self.gate("i", q)

    def x(self, q):
        """Pauli-X."""
        return self.gate("x", q)

    def y(self, q):
        """Pauli-Y."""
        return self.gate("y", q)

    def z(self, q):
        """Pauli-Z."""
        return self.gate("z", q)

    def h(self, q):
        """Hadamard."""
        return self.gate("h", q)

    def s(self, q):
        """Phase gate S."""
        return self.gate("s", q)

    def sdg(self, q):
        """S-dagger."""
        return self.gate("sdg", q)

    def t(self, q):
        """T gate."""
        return self.gate("t", q)

    def tdg(self, q):
        """T-dagger."""
        return self.gate("tdg", q)

    def rx(self, q, theta):
        """X rotation."""
        return self.gate("rx", q, params=(theta,))

    def ry(self, q, theta):
        """Y rotation."""
        return self.gate("ry", q, params=(theta,))

    def rz(self, q, theta):
        """Z rotation."""
        return self.gate("rz", q, params=(theta,))

    def p(self, q, lam):
        """Phase gate diag(1, e^{i lam})."""
        return self.gate("p", q, params=(lam,))

    def cnot(self, control, target):
        """Controlled-NOT (control listed first)."""
        return self.gate("cnot", control, target)

    def cz(self, control, target):
        """Controlled-Z."""
        return self.gate("cz", control, target)

    def swap(self, a, b):
        """SWAP."""
        return self.gate("swap", a, b)

    def cp(self, control, target, lam):
        """Controlled phase."""
        return self.gate("cp", control, target, params=(lam,))

    def toffoli(self, c1, c2, target):
        """Toffoli (CCX); controls listed first."""
        return self.gate("toffoli", c1, c2, target)

    def unitary(self, matrix, qubits, name="unitary"):
        """Append an explicit unitary block on ``qubits``."""
        self._check(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if not gates.is_unitary(matrix):
            raise QuantumError("matrix for %r is not unitary" % name)
        self.ops.append(GateOp(name, qubits, matrix=matrix))
        return self

    def permutation(self, mapping, qubits, name="perm"):
        """Append a classical-permutation unitary block on ``qubits``."""
        self._check(qubits)
        self.ops.append(GateOp(name, qubits, permutation=mapping))
        return self

    def measure(self, qubit, cbit=None):
        """Measure ``qubit`` into classical bit ``cbit`` (default ``c<q>``)."""
        self._check([qubit])
        if cbit is None:
            cbit = "c%d" % qubit
        self.ops.append(MeasureOp(qubit, cbit))
        return self

    def measure_all(self):
        """Measure every qubit into ``c0..c<n-1>``."""
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    # -- analysis ------------------------------------------------------------

    @property
    def gate_ops(self):
        """All unitary ops, in order."""
        return [op for op in self.ops if isinstance(op, GateOp)]

    @property
    def measure_ops(self):
        """All measurement ops, in order."""
        return [op for op in self.ops if isinstance(op, MeasureOp)]

    def gate_counts(self):
        """Histogram of gate mnemonics."""
        counts = {}
        for op in self.gate_ops:
            counts[op.name] = counts.get(op.name, 0) + 1
        return counts

    def two_qubit_gate_count(self):
        """Number of multi-qubit unitary ops (entangling cost metric)."""
        return sum(1 for op in self.gate_ops if len(op.qubits) >= 2)

    def depth(self):
        """Circuit depth: longest chain of ops sharing qubits."""
        frontier = [0] * self.num_qubits
        for op in self.ops:
            qubits = op.qubits if isinstance(op, GateOp) else (op.qubit,)
            level = 1 + max(frontier[q] for q in qubits)
            for q in qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def inverse(self):
        """Return the inverse circuit (unitary ops only).

        Raises :class:`QuantumError` when the circuit contains
        measurements, which are not invertible.
        """
        if self.measure_ops:
            raise QuantumError("cannot invert a circuit with measurements")
        inv = QuantumCircuit(self.num_qubits, name=self.name + "_inv")
        for op in reversed(self.ops):
            matrix = op.resolved_matrix().conj().T
            inv.ops.append(GateOp(op.name + "_dg", op.qubits, matrix=matrix))
        return inv

    def extended(self, other):
        """Concatenate another circuit of the same width after this one."""
        if other.num_qubits != self.num_qubits:
            raise QuantumError("cannot extend with a different-width circuit")
        combined = QuantumCircuit(self.num_qubits, name=self.name)
        combined.ops = list(self.ops) + list(other.ops)
        return combined

    # -- reference execution --------------------------------------------------

    def run(self, initial_state=None, rng=None):
        """Reference execution: returns ``(StateVector, classical_bits)``.

        This bypasses the compiler/micro-architecture stack and is used as
        semantic ground truth.
        """
        rng = make_rng(rng)
        if initial_state is None:
            state = StateVector(self.num_qubits)
        else:
            state = initial_state.copy()
        cbits = {}
        for op in self.ops:
            if isinstance(op, MeasureOp):
                cbits[op.cbit] = state.measure(op.qubit, rng=rng)
            elif op.permutation is not None:
                state.apply_permutation(op.permutation, op.qubits)
            else:
                state.apply_gate(op.resolved_matrix(), op.qubits)
        return state, cbits

    def statevector(self):
        """Final state for a measurement-free circuit from ``|0...0>``."""
        if self.measure_ops:
            raise QuantumError("statevector() requires a measurement-free circuit")
        state, _ = self.run()
        return state

    def __len__(self):
        return len(self.ops)

    def __repr__(self):
        return "QuantumCircuit(%r, qubits=%d, ops=%d)" % (
            self.name, self.num_qubits, len(self.ops))
