"""The quantum accelerator facade: the full Fig. 2 system stack.

Figure 2 of the paper lists the layers a quantum accelerator must provide:
application, algorithm/language, compiler, runtime, micro-architecture, and
the quantum chip.  :class:`QuantumAccelerator` wires the concrete layer
implementations of this package into that stack and reports, for every
kernel submitted, what each layer produced -- the artifact the FIG2
benchmark prints.
"""

from ..core import telemetry
from ..core.rngs import make_rng
from . import qasm
from .compiler import LinearTopology, compile_circuit
from .microarch import MicroArchitecture
from .runtime import QuantumRuntime


class StackReport:
    """Per-layer artifacts for one kernel's trip through the stack.

    One entry per Fig. 2 layer, from the application downwards.  Rendered
    as the rows of the FIG2 benchmark.
    """

    LAYERS = (
        "application",
        "algorithm/language",
        "compiler (mapping+routing)",
        "runtime",
        "micro-architecture",
        "quantum chip",
    )

    def __init__(self):
        self.entries = {}

    def record(self, layer, **fields):
        """Attach artifact fields to a named layer."""
        if layer not in self.LAYERS:
            raise ValueError("unknown stack layer %r" % layer)
        self.entries.setdefault(layer, {}).update(fields)

    def rows(self):
        """Ordered (layer, fields) pairs for tabular display."""
        return [(layer, self.entries.get(layer, {})) for layer in self.LAYERS]

    def __repr__(self):
        return "StackReport(layers=%d)" % len(self.entries)


class QuantumAccelerator:
    """A quantum computer defined as an accelerator (Section II.A).

    Parameters
    ----------
    num_qubits : int
        Physical qubit count of the simulated chip.
    topology : optional
        Physical coupling topology (default: linear nearest-neighbour).
    coherence_ns : float, optional
        Coherence budget passed to the micro-architecture.
    """

    def __init__(self, num_qubits, topology=None, coherence_ns=None):
        self.num_qubits = int(num_qubits)
        self.topology = topology or LinearTopology(self.num_qubits)
        kwargs = {}
        if coherence_ns is not None:
            kwargs["coherence_ns"] = coherence_ns
        self.microarch = MicroArchitecture(self.num_qubits, **kwargs)
        self.runtime = QuantumRuntime(self.microarch)

    def execute_kernel(self, circuit, shots=1024, rng=None, verify=False,
                       application=None):
        """Send one kernel through every stack layer.

        Returns ``(ShotResult, StackReport)``.  ``application`` is an
        optional label recorded at the top layer (e.g. "shor(N=15)").
        """
        rng = make_rng(rng)
        telemetry.counter("quantum.accelerator.kernels").inc()
        with telemetry.span("quantum.accelerator.kernel",
                            application=application or circuit.name,
                            shots=shots):
            return self._execute_kernel(circuit, shots, rng, verify,
                                        application)

    def _execute_kernel(self, circuit, shots, rng, verify, application):
        report = StackReport()
        report.record("application",
                      name=application or circuit.name,
                      logical_qubits=circuit.num_qubits)
        report.record("algorithm/language",
                      source_ops=len(circuit.ops),
                      source_depth=circuit.depth(),
                      gate_counts=circuit.gate_counts())

        compiled, compile_report = compile_circuit(
            circuit, topology=self.topology, verify=verify and
            not circuit.measure_ops)
        report.record("compiler (mapping+routing)", **compile_report["compiled"])
        report.record("compiler (mapping+routing)",
                      peephole_ops_removed=compile_report[
                          "peephole_ops_removed"])
        if "fidelity" in compile_report:
            report.record("compiler (mapping+routing)",
                          verified_fidelity=compile_report["fidelity"])

        # The language layer is exercised by lowering through QASM text
        # whenever the kernel is expressible in primitives.
        physical = compiled.circuit
        if all(op.is_primitive for op in physical.gate_ops):
            text = qasm.emit(physical)
            physical = qasm.parse(text)
            report.record("algorithm/language", qasm_lines=text.count("\n"))

        result = self.runtime.run(physical, shots=shots, rng=rng)
        report.record("runtime", shots=shots,
                      distinct_outcomes=len(result.counts),
                      total_chip_time_ns=result.total_chip_time_ns)
        single_shot_ns = result.total_chip_time_ns / shots
        report.record("micro-architecture",
                      instructions=len(physical.ops) + 1,
                      kernel_time_ns=single_shot_ns,
                      coherence_ns=self.microarch.coherence_ns,
                      within_coherence=single_shot_ns
                      <= self.microarch.coherence_ns)
        report.record("quantum chip",
                      physical_qubits=self.num_qubits,
                      backend="dense statevector simulator",
                      note="substitutes the 20 mK superconducting chip")
        return result, report
