"""Heterogeneous multi-core system model (Fig. 1).

Figure 1 of the paper shows a host architecture in which GPUs, FPGAs, TPUs
and quantum accelerators hang off a classical multi-core CPU.  This module
models that system at the scheduling level: devices advertise capability
profiles, workloads are bags of typed tasks, and the dispatcher assigns
each task to the device with the best modelled completion time, falling
back to the CPU for anything exotic.

The model is intentionally first-order (per-task speedup factors plus a
fixed offload latency) -- exactly the level at which the paper argues the
"quantum computer as accelerator" point: a QPU only wins when the
algorithmic speedup beats the offload and control overheads.
"""

from ..core.exceptions import QuantumError

#: Task kinds understood by the dispatcher.
TASK_KINDS = (
    "scalar",        # branchy sequential code
    "dense_linear",  # BLAS-like kernels
    "tensor",        # ML inference/training blocks
    "streaming",     # fixed-function pipelines
    "quantum",       # kernels expressed as quantum circuits
)


class Task:
    """One schedulable unit of work.

    Parameters
    ----------
    name : str
        Label used in the dispatch report.
    kind : str
        One of :data:`TASK_KINDS`.
    work_units : float
        Abstract work size; CPU executes one unit per time unit.
    """

    def __init__(self, name, kind, work_units):
        if kind not in TASK_KINDS:
            raise QuantumError("unknown task kind %r" % kind)
        if work_units <= 0:
            raise QuantumError("work_units must be positive")
        self.name = str(name)
        self.kind = kind
        self.work_units = float(work_units)

    def __repr__(self):
        return "Task(%r, %s, %g)" % (self.name, self.kind, self.work_units)


class Device:
    """An accelerator (or the host CPU) with a capability profile.

    Parameters
    ----------
    name : str
        Device label ("CPU", "GPU", "TPU", "FPGA", "QPU").
    speedups : dict
        Task kind -> throughput multiple relative to the CPU.  Missing
        kinds cannot run on the device (except on the CPU, which runs
        everything at 1x).
    offload_latency : float
        Fixed cost added per task dispatched to this device (0 for CPU).
    """

    def __init__(self, name, speedups, offload_latency=0.0):
        self.name = str(name)
        self.speedups = dict(speedups)
        self.offload_latency = float(offload_latency)

    def can_run(self, task):
        """True when the device supports the task kind."""
        return task.kind in self.speedups

    def time_for(self, task):
        """Modelled completion time for ``task`` on this device."""
        if not self.can_run(task):
            raise QuantumError(
                "device %s cannot run task kind %s" % (self.name, task.kind))
        return self.offload_latency + task.work_units / self.speedups[task.kind]

    def __repr__(self):
        return "Device(%r)" % self.name


def default_devices():
    """The Fig. 1 device complement with first-order profiles.

    Speedups are deliberately round archetypes: the GPU accelerates dense
    linear algebra, the TPU tensor blocks, the FPGA streaming pipelines,
    and the QPU quantum kernels (where its advantage is enormous but it
    runs nothing else and pays the largest offload cost).
    """
    cpu = Device("CPU", {kind: 1.0 for kind in TASK_KINDS
                         if kind != "quantum"}, offload_latency=0.0)
    # The CPU can *simulate* small quantum kernels at crushing slowdown.
    cpu.speedups["quantum"] = 1e-3
    return [
        cpu,
        Device("GPU", {"dense_linear": 50.0, "tensor": 20.0},
               offload_latency=5.0),
        Device("TPU", {"tensor": 80.0, "dense_linear": 30.0},
               offload_latency=5.0),
        Device("FPGA", {"streaming": 40.0, "dense_linear": 8.0},
               offload_latency=10.0),
        Device("QPU", {"quantum": 1e6}, offload_latency=50.0),
    ]


class DispatchReport:
    """Assignment table plus aggregate times for one workload dispatch."""

    def __init__(self, assignments, hetero_time, cpu_only_time):
        self.assignments = list(assignments)
        self.hetero_time = float(hetero_time)
        self.cpu_only_time = float(cpu_only_time)

    @property
    def speedup(self):
        """CPU-only time divided by heterogeneous time."""
        if self.hetero_time <= 0:
            return float("inf")
        return self.cpu_only_time / self.hetero_time

    def rows(self):
        """(task, device, time) rows for tabular display."""
        return [(task.name, device.name, time)
                for task, device, time in self.assignments]


class HeterogeneousSystem:
    """Host plus accelerators; greedy best-device dispatcher.

    The aggregate time model is serial-per-device: each device's assigned
    tasks queue on it, devices run concurrently, so makespan is the max
    per-device total.  This is the simplest model that still shows the
    Fig. 1 point (offload what accelerates, keep the rest local).
    """

    def __init__(self, devices=None):
        self.devices = list(devices) if devices is not None else default_devices()
        if not any(d.name == "CPU" for d in self.devices):
            raise QuantumError("a system needs a CPU host")

    @property
    def cpu(self):
        """The host device."""
        return next(d for d in self.devices if d.name == "CPU")

    def best_device(self, task):
        """Device minimizing modelled completion time for ``task``."""
        candidates = [d for d in self.devices if d.can_run(task)]
        if not candidates:
            raise QuantumError("no device can run task %r" % task)
        return min(candidates, key=lambda d: d.time_for(task))

    def dispatch(self, tasks):
        """Assign every task; returns a :class:`DispatchReport`."""
        assignments = []
        per_device_time = {d.name: 0.0 for d in self.devices}
        cpu_only = 0.0
        for task in tasks:
            device = self.best_device(task)
            time = device.time_for(task)
            assignments.append((task, device, time))
            per_device_time[device.name] += time
            cpu_only += self.cpu.time_for(task)
        makespan = max(per_device_time.values()) if per_device_time else 0.0
        return DispatchReport(assignments, makespan, cpu_only)


def example_workload():
    """A mixed application in the spirit of Section II's cloud scenario.

    A genomics-flavoured pipeline: parse (scalar), align (dense linear),
    learn (tensor), filter (streaming), and a quantum similarity kernel.
    """
    return [
        Task("parse-reads", "scalar", 100.0),
        Task("align-matrix", "dense_linear", 4000.0),
        Task("train-classifier", "tensor", 8000.0),
        Task("filter-stream", "streaming", 1200.0),
        Task("dna-similarity-kernel", "quantum", 5e5),
        Task("postprocess", "scalar", 50.0),
    ]
