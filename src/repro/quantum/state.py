"""Dense statevector backend: the simulated qubit chip.

This is the bottom layer of the Fig. 2 stack.  The paper's quantum chip is
a cryogenic superconducting device; per DESIGN.md we substitute a dense
statevector simulator that executes the identical instruction stream the
micro-architecture issues.

Qubit convention: qubit ``k`` is the k-th least-significant bit of the
basis-state index, so basis state ``|q_{n-1} ... q_1 q_0>`` has index
``sum_k q_k 2^k``.
"""

import math

import numpy as np

from ..core.exceptions import QubitIndexError, QuantumError
from ..core.rngs import make_rng


class StateVector:
    """An n-qubit pure state with gate application and measurement.

    Parameters
    ----------
    num_qubits : int
        Number of qubits (state dimension ``2**num_qubits``).
    amplitudes : array-like, optional
        Initial amplitudes; defaults to ``|0...0>``.
    """

    def __init__(self, num_qubits, amplitudes=None):
        if num_qubits < 1:
            raise QuantumError("need at least one qubit")
        if num_qubits > 26:
            raise QuantumError(
                "refusing to allocate a %d-qubit dense state" % num_qubits
            )
        self.num_qubits = int(num_qubits)
        dim = 2 ** self.num_qubits
        if amplitudes is None:
            self.amplitudes = np.zeros(dim, dtype=complex)
            self.amplitudes[0] = 1.0
        else:
            self.amplitudes = np.asarray(amplitudes, dtype=complex).reshape(dim)
            norm = np.linalg.norm(self.amplitudes)
            if not math.isclose(norm, 1.0, rel_tol=0, abs_tol=1e-8):
                raise QuantumError("amplitudes are not normalized (|a|=%g)" % norm)

    def copy(self):
        """Deep copy of the state."""
        return StateVector(self.num_qubits, self.amplitudes.copy())

    def _check_qubits(self, qubits):
        seen = set()
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise QubitIndexError(
                    "qubit %d out of range for %d-qubit state"
                    % (q, self.num_qubits)
                )
            if q in seen:
                raise QubitIndexError("duplicate qubit %d in gate operands" % q)
            seen.add(q)

    def apply_gate(self, matrix, qubits):
        """Apply a ``2^k x 2^k`` unitary to the listed ``k`` qubits in place.

        ``qubits[0]`` is the least-significant bit of the gate's local
        index; e.g. for CNOT, ``qubits = [control, target]`` matches the
        matrix in :mod:`repro.quantum.gates` (control is the low bit).
        """
        qubits = list(qubits)
        self._check_qubits(qubits)
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2 ** k, 2 ** k):
            raise QuantumError(
                "matrix shape %s does not act on %d qubits"
                % (matrix.shape, k)
            )
        n = self.num_qubits
        # View the state as an n-dimensional tensor with axis j indexing
        # qubit n-1-j (C order: the last axis is qubit 0).
        tensor = self.amplitudes.reshape([2] * n)
        axes = [n - 1 - q for q in qubits]
        # Move the gate's qubits to the front, with qubits[0] as the
        # *last* of the moved axes so it stays least significant.
        order = list(reversed(axes))
        tensor = np.moveaxis(tensor, order, range(k))
        tensor = tensor.reshape(2 ** k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape([2] * n)
        tensor = np.moveaxis(tensor, range(k), order)
        self.amplitudes = np.ascontiguousarray(tensor).reshape(-1)
        return self

    def apply_permutation(self, mapping, qubits):
        """Apply a classical permutation on the subspace of ``qubits``.

        ``mapping`` is a length ``2^k`` integer array: local basis state
        ``b`` maps to ``mapping[b]``.  Used for the modular-arithmetic
        blocks of Shor's algorithm, where the unitary is a permutation and
        a dense matrix would be wastefully large.
        """
        qubits = list(qubits)
        self._check_qubits(qubits)
        k = len(qubits)
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (2 ** k,):
            raise QuantumError("mapping must have length 2^%d" % k)
        if sorted(mapping.tolist()) != list(range(2 ** k)):
            raise QuantumError("mapping is not a permutation")
        n = self.num_qubits
        indices = np.arange(2 ** n)
        local = np.zeros_like(indices)
        for pos, q in enumerate(qubits):
            local |= ((indices >> q) & 1) << pos
        permuted_local = mapping[local]
        new_indices = indices.copy()
        for pos, q in enumerate(qubits):
            bit = (permuted_local >> pos) & 1
            new_indices = (new_indices & ~(1 << q)) | (bit << q)
        new_amplitudes = np.zeros_like(self.amplitudes)
        new_amplitudes[new_indices] = self.amplitudes
        self.amplitudes = new_amplitudes
        return self

    def probabilities(self):
        """Probability of each computational basis state."""
        return np.abs(self.amplitudes) ** 2

    def probability_of(self, qubit, value):
        """Marginal probability that ``qubit`` reads ``value`` (0 or 1)."""
        self._check_qubits([qubit])
        probs = self.probabilities()
        indices = np.arange(len(probs))
        mask = ((indices >> qubit) & 1) == int(value)
        return float(np.sum(probs[mask]))

    def collapse(self, qubit, outcome):
        """Project ``qubit`` onto ``outcome`` and renormalize, in place.

        The deterministic half of :meth:`measure` (no randomness): used
        directly by the shot-batching prefix tree in
        :meth:`repro.quantum.microarch.MicroArchitecture.execute_shots`,
        which draws outcomes itself and must collapse with the exact
        operation sequence :meth:`measure` uses.
        """
        self._check_qubits([qubit])
        outcome = int(outcome)
        indices = np.arange(len(self.amplitudes))
        keep = ((indices >> qubit) & 1) == outcome
        self.amplitudes[~keep] = 0.0
        norm = np.linalg.norm(self.amplitudes)
        if norm == 0.0:
            raise QuantumError("measurement collapsed to the zero vector")
        self.amplitudes /= norm
        return self

    def measure(self, qubit, rng=None):
        """Projectively measure one qubit; collapses the state in place.

        Returns the observed bit (0 or 1).
        """
        rng = make_rng(rng)
        p1 = self.probability_of(qubit, 1)
        outcome = 1 if rng.random() < p1 else 0
        self.collapse(qubit, outcome)
        return outcome

    def measure_all(self, rng=None):
        """Measure every qubit; returns a tuple of bits (qubit 0 first)."""
        rng = make_rng(rng)
        probs = self.probabilities()
        index = int(rng.choice(len(probs), p=probs / probs.sum()))
        self.amplitudes[:] = 0.0
        self.amplitudes[index] = 1.0
        return tuple((index >> q) & 1 for q in range(self.num_qubits))

    def sample_counts(self, shots, rng=None):
        """Sample measurement outcomes without collapsing the state.

        Returns a dict mapping basis-state index to count.
        """
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = make_rng(rng)
        probs = self.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        counts = {}
        for outcome in outcomes:
            counts[int(outcome)] = counts.get(int(outcome), 0) + 1
        return counts

    def fidelity(self, other):
        """``|<self|other>|^2`` against another state of the same size."""
        if not isinstance(other, StateVector):
            raise TypeError("fidelity expects another StateVector")
        if other.num_qubits != self.num_qubits:
            raise QuantumError("qubit-count mismatch in fidelity")
        overlap = np.vdot(self.amplitudes, other.amplitudes)
        return float(abs(overlap) ** 2)

    def norm(self):
        """Euclidean norm of the amplitude vector (1.0 for a valid state)."""
        return float(np.linalg.norm(self.amplitudes))

    def reduced_probabilities(self, qubits):
        """Marginal distribution over the listed qubits (low bit first)."""
        qubits = list(qubits)
        self._check_qubits(qubits)
        probs = self.probabilities()
        indices = np.arange(len(probs))
        local = np.zeros_like(indices)
        for pos, q in enumerate(qubits):
            local |= ((indices >> q) & 1) << pos
        marginal = np.zeros(2 ** len(qubits))
        np.add.at(marginal, local, probs)
        return marginal

    def __repr__(self):
        return "StateVector(num_qubits=%d)" % self.num_qubits


class BatchedStateVector:
    """A stack of ``B`` independent n-qubit states with batched gates.

    Amplitudes live in a ``(B, 2**n)`` array; gate application reshapes
    the stack so one matrix product covers every member.  The per-member
    results are bit-identical to :class:`StateVector` -- a GEMM computes
    each output column independently of how many columns sit beside it,
    so batching members as extra columns cannot perturb any of them (the
    equivalence tier asserts this with ``np.array_equal``).  Measurement
    statistics (:meth:`probability_of`, :meth:`collapse`) intentionally
    run per member through the same reductions the scalar class uses:
    vectorizing a masked sum across the batch would change the summation
    tree and break bit-identity for a step that is cheap anyway.

    Parameters
    ----------
    num_qubits : int
    batch : int
        Number of members; every member starts in ``|0...0>`` unless
        ``amplitudes`` (shape ``(batch, 2**num_qubits)``) is given.
    """

    def __init__(self, num_qubits, batch=None, amplitudes=None):
        if num_qubits < 1:
            raise QuantumError("need at least one qubit")
        if num_qubits > 26:
            raise QuantumError(
                "refusing to allocate a %d-qubit dense state" % num_qubits
            )
        self.num_qubits = int(num_qubits)
        dim = 2 ** self.num_qubits
        if amplitudes is None:
            if batch is None or batch < 1:
                raise QuantumError("batch must be a positive int")
            self.amplitudes = np.zeros((int(batch), dim), dtype=complex)
            self.amplitudes[:, 0] = 1.0
        else:
            self.amplitudes = np.asarray(amplitudes, dtype=complex)
            if self.amplitudes.ndim != 2 \
                    or self.amplitudes.shape[1] != dim:
                raise QuantumError(
                    "amplitudes must have shape (batch, 2**%d)"
                    % self.num_qubits)
            if batch is not None \
                    and self.amplitudes.shape[0] != int(batch):
                raise QuantumError("batch/amplitudes shape mismatch")

    @classmethod
    def from_states(cls, states):
        """Stack scalar :class:`StateVector` members (copies)."""
        states = list(states)
        if not states:
            raise QuantumError("need at least one member state")
        n = states[0].num_qubits
        if any(state.num_qubits != n for state in states):
            raise QuantumError("member qubit counts differ")
        return cls(n, amplitudes=np.stack(
            [state.amplitudes for state in states]))

    @property
    def batch(self):
        """Number of stacked member states."""
        return self.amplitudes.shape[0]

    def member(self, index):
        """Member ``index`` as an independent scalar :class:`StateVector`."""
        return StateVector(self.num_qubits,
                           self.amplitudes[index].copy())

    def copy(self):
        """Deep copy of the stack."""
        return BatchedStateVector(self.num_qubits,
                                  amplitudes=self.amplitudes.copy())

    def _check_qubits(self, qubits):
        seen = set()
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise QubitIndexError(
                    "qubit %d out of range for %d-qubit state"
                    % (q, self.num_qubits)
                )
            if q in seen:
                raise QubitIndexError("duplicate qubit %d in gate operands" % q)
            seen.add(q)

    def apply_gate(self, matrix, qubits):
        """Apply one ``2^k x 2^k`` unitary to every member in place.

        Same tensor manipulation as :meth:`StateVector.apply_gate`, with
        the batch axis folded into the GEMM's column dimension: member
        ``b`` occupies its own column block, so its product is the same
        matrix-times-columns computation the scalar path runs.
        """
        qubits = list(qubits)
        self._check_qubits(qubits)
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2 ** k, 2 ** k):
            raise QuantumError(
                "matrix shape %s does not act on %d qubits"
                % (matrix.shape, k)
            )
        n = self.num_qubits
        batch = self.amplitudes.shape[0]
        # Axis 0 is the batch; per-member tensor axis 1+j indexes qubit
        # n-1-j, mirroring the scalar layout.
        tensor = self.amplitudes.reshape([batch] + [2] * n)
        axes = [n - q for q in qubits]
        order = list(reversed(axes))
        # Gate axes to the front (ahead of the batch axis) so the fold
        # is (2**k, batch * rest): each member contributes a contiguous
        # block of columns.
        tensor = np.moveaxis(tensor, order, range(k))
        tensor = tensor.reshape(2 ** k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape([2] * k + [batch] + [2] * (n - k))
        tensor = np.moveaxis(tensor, range(k), order)
        self.amplitudes = np.ascontiguousarray(tensor).reshape(batch, -1)
        return self

    def apply_permutation(self, mapping, qubits):
        """Apply a classical subspace permutation to every member."""
        qubits = list(qubits)
        self._check_qubits(qubits)
        k = len(qubits)
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (2 ** k,):
            raise QuantumError("mapping must have length 2^%d" % k)
        if sorted(mapping.tolist()) != list(range(2 ** k)):
            raise QuantumError("mapping is not a permutation")
        n = self.num_qubits
        indices = np.arange(2 ** n)
        local = np.zeros_like(indices)
        for pos, q in enumerate(qubits):
            local |= ((indices >> q) & 1) << pos
        permuted_local = mapping[local]
        new_indices = indices.copy()
        for pos, q in enumerate(qubits):
            bit = (permuted_local >> pos) & 1
            new_indices = (new_indices & ~(1 << q)) | (bit << q)
        new_amplitudes = np.zeros_like(self.amplitudes)
        new_amplitudes[:, new_indices] = self.amplitudes
        self.amplitudes = new_amplitudes
        return self

    def probability_of(self, qubit, value):
        """Per-member marginal probabilities, shape ``(B,)``.

        Computed member-at-a-time with the scalar reduction (see the
        class docstring for why).
        """
        self._check_qubits([qubit])
        dim = self.amplitudes.shape[1]
        indices = np.arange(dim)
        mask = ((indices >> qubit) & 1) == int(value)
        out = np.empty(self.batch)
        for index in range(self.batch):
            probs = np.abs(self.amplitudes[index]) ** 2
            out[index] = float(np.sum(probs[mask]))
        return out

    def collapse(self, qubit, outcomes):
        """Project ``qubit`` of member ``b`` onto ``outcomes[b]``, in place."""
        self._check_qubits([qubit])
        outcomes = np.asarray(outcomes)
        if outcomes.shape != (self.batch,):
            raise QuantumError("need one outcome per member")
        indices = np.arange(self.amplitudes.shape[1])
        qubit_bit = (indices >> qubit) & 1
        for index in range(self.batch):
            row = self.amplitudes[index]
            row[qubit_bit != int(outcomes[index])] = 0.0
            norm = np.linalg.norm(row)
            if norm == 0.0:
                raise QuantumError(
                    "measurement collapsed to the zero vector")
            row /= norm
        return self

    def __repr__(self):
        return ("BatchedStateVector(num_qubits=%d, batch=%d)"
                % (self.num_qubits, self.batch))
