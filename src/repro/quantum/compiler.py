"""Compiler layer of the quantum-accelerator stack (Fig. 2).

Three families of passes, applied in order by :func:`compile_circuit`:

1. **Decomposition** -- composite gates (Toffoli, SWAP) and raw 1-qubit
   unitary blocks are rewritten into the primitive basis
   ``{rz, ry, h, t, tdg, s, sdg, x, z, p, cnot, cz, cp}``.
2. **Mapping/routing** -- logical qubits are placed on a physical topology
   (linear nearest-neighbour by default, the common constraint of
   superconducting chips) and SWAP gates are inserted so every two-qubit
   gate acts on adjacent physical qubits.
3. **Verification** -- the compiled circuit is checked semantically
   equivalent to the source (statevector comparison up to the final layout
   permutation and global phase), the compiler's regression safety net.

Multi-qubit matrix/permutation blocks wider than two qubits (e.g. Shor's
modular-multiplication macros) are *chip macros*: they are legal in the
instruction stream but bypass routing, mirroring hardware with global or
multi-qubit native operations.  Pass ``allow_macros=False`` to reject them.
"""

import cmath
import math

import numpy as np

from ..core import telemetry
from ..core.exceptions import CompilationError
from .circuit import GateOp, MeasureOp, QuantumCircuit


def zyz_angles(matrix):
    """Decompose a 1-qubit unitary as ``e^{i alpha} Rz(c) Ry(b) Rz(a)``.

    Returns ``(alpha, a, b, c)`` such that the product (applied right to
    left: first Rz(a)) reproduces ``matrix``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise CompilationError("zyz_angles expects a 2x2 matrix")
    det = np.linalg.det(matrix)
    alpha = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * alpha)
    # su2 = [[cos(b/2) e^{-i(a+c)/2}, -sin(b/2) e^{i(a-c)/2}],
    #        [sin(b/2) e^{i(c-a)/2},   cos(b/2) e^{i(a+c)/2}]]
    b = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) > 1e-12 and abs(su2[1, 0]) > 1e-12:
        sum_ac = -2.0 * cmath.phase(su2[0, 0])
        c_minus_a = 2.0 * cmath.phase(su2[1, 0])
        a = (sum_ac - c_minus_a) / 2.0
        c = (sum_ac + c_minus_a) / 2.0
    elif abs(su2[0, 0]) > 1e-12:
        # b == 0: only a+c matters
        a = -2.0 * cmath.phase(su2[0, 0])
        c = 0.0
    else:
        # b == pi: only c-a matters
        a = -2.0 * cmath.phase(su2[1, 0])
        c = 0.0
    return alpha, a, b, c


def _toffoli_ops(c1, c2, target):
    """Standard 6-CNOT Toffoli decomposition over {h, t, tdg, cnot}."""
    return [
        GateOp("h", [target]),
        GateOp("cnot", [c2, target]),
        GateOp("tdg", [target]),
        GateOp("cnot", [c1, target]),
        GateOp("t", [target]),
        GateOp("cnot", [c2, target]),
        GateOp("tdg", [target]),
        GateOp("cnot", [c1, target]),
        GateOp("t", [c2]),
        GateOp("t", [target]),
        GateOp("h", [target]),
        GateOp("cnot", [c1, c2]),
        GateOp("t", [c1]),
        GateOp("tdg", [c2]),
        GateOp("cnot", [c1, c2]),
    ]


def _swap_ops(a, b):
    """SWAP as three alternating CNOTs."""
    return [
        GateOp("cnot", [a, b]),
        GateOp("cnot", [b, a]),
        GateOp("cnot", [a, b]),
    ]


def decompose(circuit, keep_swap=False):
    """Rewrite composites and 1-qubit matrix blocks into the primitive basis.

    Toffoli gates become the standard 6-CNOT network; SWAPs become three
    CNOTs (unless ``keep_swap``, used before routing which re-introduces
    swaps anyway); raw single-qubit unitaries become Rz-Ry-Rz triples
    (global phase dropped -- unobservable).  Wider matrix/permutation
    blocks pass through untouched (macros).
    """
    lowered = QuantumCircuit(circuit.num_qubits, name=circuit.name + "_dec")
    for op in circuit.ops:
        if isinstance(op, MeasureOp):
            lowered.ops.append(op)
            continue
        if op.name == "toffoli":
            lowered.ops.extend(_toffoli_ops(*op.qubits))
        elif op.name == "swap" and not keep_swap:
            lowered.ops.extend(_swap_ops(*op.qubits))
        elif not op.is_primitive and op.matrix is not None \
                and len(op.qubits) == 1:
            _alpha, a, b, c = zyz_angles(op.matrix)
            qubit = op.qubits[0]
            if abs(a) > 1e-12:
                lowered.ops.append(GateOp("rz", [qubit], params=(a,)))
            if abs(b) > 1e-12:
                lowered.ops.append(GateOp("ry", [qubit], params=(b,)))
            if abs(c) > 1e-12:
                lowered.ops.append(GateOp("rz", [qubit], params=(c,)))
        else:
            lowered.ops.append(op)
    return lowered


#: Pairs of mnemonics that cancel when adjacent on identical operands.
_INVERSE_PAIRS = {
    ("x", "x"), ("y", "y"), ("z", "z"), ("h", "h"),
    ("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t"),
    ("cnot", "cnot"), ("cz", "cz"), ("swap", "swap"),
}

#: Rotation families whose adjacent same-operand instances merge by
#: angle addition.
_MERGEABLE_ROTATIONS = {"rx", "ry", "rz", "p"}


def optimize(circuit, angle_tolerance=1e-12):
    """Peephole optimization: cancel inverses, merge rotations.

    Repeatedly sweeps the op list applying two local rewrites on
    *adjacent* gates with identical operands (adjacency is checked on
    the instruction stream -- a conservative, obviously-sound criterion):

    * ``U ; U^-1 -> (nothing)`` for the self-inverse/dagger pairs,
    * ``R(a) ; R(b) -> R(a + b)`` for rotation families (dropped
      entirely when the merged angle vanishes).

    Measurements act as barriers.  Returns a new circuit; the input is
    untouched.
    """
    ops = list(circuit.ops)
    changed = True
    while changed:
        changed = False
        result = []
        index = 0
        while index < len(ops):
            op = ops[index]
            nxt = ops[index + 1] if index + 1 < len(ops) else None
            if (isinstance(op, GateOp) and isinstance(nxt, GateOp)
                    and op.is_primitive and nxt.is_primitive
                    and op.qubits == nxt.qubits):
                if (op.name, nxt.name) in _INVERSE_PAIRS:
                    index += 2
                    changed = True
                    continue
                if (op.name == nxt.name
                        and op.name in _MERGEABLE_ROTATIONS):
                    angle = op.params[0] + nxt.params[0]
                    index += 2
                    changed = True
                    if abs(angle) > angle_tolerance:
                        result.append(GateOp(op.name, op.qubits,
                                             params=(angle,)))
                    continue
            result.append(op)
            index += 1
        ops = result
    optimized = QuantumCircuit(circuit.num_qubits,
                               name=circuit.name + "_opt")
    optimized.ops = ops
    return optimized


class LinearTopology:
    """A chain of ``num_qubits`` physical qubits; edges between neighbours."""

    def __init__(self, num_qubits):
        self.num_qubits = int(num_qubits)

    def are_adjacent(self, a, b):
        """True when physical qubits ``a`` and ``b`` share an edge."""
        return abs(a - b) == 1

    def path(self, a, b):
        """Inclusive physical path from ``a`` to ``b``."""
        step = 1 if b >= a else -1
        return list(range(a, b + step, step))


class GridTopology:
    """A rows x cols grid of physical qubits (row-major numbering)."""

    def __init__(self, rows, cols):
        self.rows = int(rows)
        self.cols = int(cols)
        self.num_qubits = self.rows * self.cols

    def _coords(self, q):
        return divmod(q, self.cols)

    def are_adjacent(self, a, b):
        """True when the two physical qubits are grid neighbours."""
        ra, ca = self._coords(a)
        rb, cb = self._coords(b)
        return abs(ra - rb) + abs(ca - cb) == 1

    def path(self, a, b):
        """An L-shaped inclusive path: first along rows, then columns."""
        ra, ca = self._coords(a)
        rb, cb = self._coords(b)
        nodes = [a]
        r, c = ra, ca
        while r != rb:
            r += 1 if rb > r else -1
            nodes.append(r * self.cols + c)
        while c != cb:
            c += 1 if cb > c else -1
            nodes.append(r * self.cols + c)
        return nodes


class CompiledCircuit:
    """Routing result: the physical circuit plus layout bookkeeping.

    Attributes
    ----------
    circuit : QuantumCircuit
        The physical-qubit circuit with routing SWAPs inserted.
    initial_layout : dict
        logical qubit -> physical qubit at circuit start.
    final_layout : dict
        logical qubit -> physical qubit after all routing SWAPs.
    swap_count : int
        Number of SWAP gates inserted by the router.
    """

    def __init__(self, circuit, initial_layout, final_layout, swap_count):
        self.circuit = circuit
        self.initial_layout = dict(initial_layout)
        self.final_layout = dict(final_layout)
        self.swap_count = int(swap_count)

    def report(self):
        """Summary dict used by the Fig. 2 stack demonstration."""
        return {
            "physical_qubits": self.circuit.num_qubits,
            "ops": len(self.circuit.ops),
            "depth": self.circuit.depth(),
            "gate_counts": self.circuit.gate_counts(),
            "swaps_inserted": self.swap_count,
            "two_qubit_gates": self.circuit.two_qubit_gate_count(),
        }


def route(circuit, topology=None, allow_macros=True):
    """Insert SWAPs so every 2-qubit gate acts on adjacent physical qubits.

    Greedy router: for each two-qubit gate, the first operand is swapped
    along the topology's path toward the second until adjacent.  Macros
    (>2-qubit blocks) bypass routing when ``allow_macros``; otherwise they
    raise :class:`CompilationError`.

    Returns a :class:`CompiledCircuit`.
    """
    if topology is None:
        topology = LinearTopology(circuit.num_qubits)
    if topology.num_qubits < circuit.num_qubits:
        raise CompilationError(
            "topology has %d qubits, circuit needs %d"
            % (topology.num_qubits, circuit.num_qubits)
        )
    layout = {q: q for q in range(circuit.num_qubits)}  # logical -> physical
    inverse = {q: q for q in range(circuit.num_qubits)}  # physical -> logical
    routed = QuantumCircuit(topology.num_qubits, name=circuit.name + "_routed")
    swap_count = 0

    def swap_physical(pa, pb):
        nonlocal swap_count
        routed.ops.append(GateOp("swap", [pa, pb]))
        swap_count += 1
        la, lb = inverse.get(pa), inverse.get(pb)
        if la is not None:
            layout[la] = pb
        if lb is not None:
            layout[lb] = pa
        inverse[pa], inverse[pb] = lb, la

    for op in circuit.ops:
        if isinstance(op, MeasureOp):
            routed.ops.append(MeasureOp(layout[op.qubit], op.cbit))
            continue
        if len(op.qubits) == 1:
            routed.ops.append(op.remapped(layout))
            continue
        if len(op.qubits) > 2:
            if not allow_macros:
                raise CompilationError(
                    "cannot route %d-qubit block %r on restricted topology"
                    % (len(op.qubits), op.name)
                )
            routed.ops.append(op.remapped(layout))
            continue
        a, b = op.qubits
        while not topology.are_adjacent(layout[a], layout[b]):
            path = topology.path(layout[a], layout[b])
            swap_physical(path[0], path[1])
        routed.ops.append(op.remapped(layout))
    return CompiledCircuit(routed, {q: q for q in range(circuit.num_qubits)},
                           layout, swap_count)


def verify_equivalence(original, compiled, atol=1e-8):
    """Check a routed circuit is semantically equal to its source.

    Both circuits are simulated from ``|0..0>`` (measurements must be
    absent); the compiled state is compared against the source state with
    its qubits permuted through the final layout.  Returns the fidelity.
    """
    if original.measure_ops or compiled.circuit.measure_ops:
        raise CompilationError("equivalence check requires measurement-free circuits")
    source_state = original.statevector()
    routed_state = compiled.circuit.statevector()
    n_phys = compiled.circuit.num_qubits
    layout = compiled.final_layout
    # Build the expected physical state: logical qubit q lives at
    # physical position layout[q]; unused physical qubits stay |0>.
    expected = np.zeros(2 ** n_phys, dtype=complex)
    for logical_index, amplitude in enumerate(source_state.amplitudes):
        if amplitude == 0.0:
            continue
        physical_index = 0
        for q in range(original.num_qubits):
            bit = (logical_index >> q) & 1
            physical_index |= bit << layout[q]
        expected[physical_index] = amplitude
    overlap = abs(np.vdot(expected, routed_state.amplitudes)) ** 2
    if overlap < 1.0 - atol:
        raise CompilationError(
            "compiled circuit diverges from source (fidelity %.6f)" % overlap
        )
    return float(overlap)


def compile_circuit(circuit, topology=None, allow_macros=True, verify=False,
                    peephole=True):
    """Full pipeline: decompose, peephole-optimize, route; optionally verify.

    Returns ``(CompiledCircuit, report_dict)`` where the report carries the
    per-layer numbers shown by the Fig. 2 stack benchmark.
    """
    registry = telemetry.get_registry()
    with telemetry.span("quantum.compiler.compile",
                        source_ops=len(circuit.ops)) as compile_span:
        with telemetry.span("quantum.compiler.decompose"):
            lowered = decompose(circuit)
        if peephole:
            before = len(lowered.ops)
            with telemetry.span("quantum.compiler.peephole"):
                lowered = optimize(lowered)
            ops_removed = before - len(lowered.ops)
        else:
            ops_removed = 0
        with telemetry.span("quantum.compiler.route"):
            compiled = route(lowered, topology=topology,
                             allow_macros=allow_macros)
        report = {
            "source_ops": len(circuit.ops),
            "source_depth": circuit.depth(),
            "source_gate_counts": circuit.gate_counts(),
            "lowered_ops": len(lowered.ops),
            "peephole_ops_removed": ops_removed,
            "compiled": compiled.report(),
        }
        if verify:
            with telemetry.span("quantum.compiler.verify"):
                report["fidelity"] = verify_equivalence(circuit, compiled)
        compile_span.set_attr("compiled_ops", len(compiled.circuit.ops))
        compile_span.set_attr("swaps_inserted", compiled.swap_count)
    if registry.enabled:
        registry.counter("quantum.compiler.compiles").inc()
        registry.counter("quantum.compiler.swaps_inserted").inc(
            compiled.swap_count)
        registry.counter("quantum.compiler.peephole_ops_removed").inc(
            ops_removed)
    return compiled, report
