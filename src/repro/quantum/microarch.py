"""Micro-architecture layer: executes a well-defined quantum instruction set.

Section II.B: "The requirements of such a device include: a compiler,
runtime support, and most importantly a micro-architecture that executes a
well-defined set of quantum instructions."  This module is that
micro-architecture, modelled after QuMA-style control processors:

* an instruction memory holding :class:`Instruction` objects (quantum ops,
  measurements, and classical control: branch / halt),
* a classical register file written by measurement results,
* a timing model with per-gate durations, so each kernel execution reports
  wall-clock on-chip time alongside instruction counts,
* a decoherence budget check: if the issued schedule exceeds the chip's
  coherence time the execution is flagged (results still computed by the
  ideal backend, mirroring how architectural simulators separate timing
  from function).
"""


from ..core.exceptions import MicroArchError
from .circuit import GateOp, MeasureOp
from .state import StateVector

#: Default gate durations in nanoseconds, loosely following published
#: superconducting-qubit numbers (single-qubit ~20 ns, two-qubit ~40 ns,
#: measurement ~300 ns).
DEFAULT_DURATIONS_NS = {
    "single_qubit": 20.0,
    "two_qubit": 40.0,
    "macro": 200.0,
    "measure": 300.0,
}

#: Default T2-style coherence budget per qubit, nanoseconds.
DEFAULT_COHERENCE_NS = 50_000.0


class Instruction:
    """One decoded micro-architecture instruction.

    ``kind`` is one of ``"gate"``, ``"measure"``, ``"branch"``, ``"halt"``.
    Gate instructions carry the originating :class:`GateOp`; measure
    instructions carry a :class:`MeasureOp`; branches carry a classical
    condition ``(cbit, value)`` and a target program counter.
    """

    __slots__ = ("kind", "op", "condition", "target")

    def __init__(self, kind, op=None, condition=None, target=None):
        self.kind = kind
        self.op = op
        self.condition = condition
        self.target = target

    def __repr__(self):
        if self.kind == "branch":
            return "Instruction(branch if %s==%d to %d)" % (
                self.condition[0], self.condition[1], self.target)
        return "Instruction(%s, %r)" % (self.kind, self.op)


class ExecutionResult:
    """Outcome of one kernel execution on the micro-architecture.

    Attributes
    ----------
    classical_bits : dict
        Final classical register file (cbit name -> 0/1).
    state : StateVector
        Final quantum state (exposed by the simulator backend only).
    instructions_executed : int
        Dynamic instruction count.
    elapsed_ns : float
        Modelled on-chip execution time.
    coherence_exceeded : bool
        True when ``elapsed_ns`` exceeded the coherence budget.
    """

    def __init__(self, classical_bits, state, instructions_executed,
                 elapsed_ns, coherence_exceeded):
        self.classical_bits = classical_bits
        self.state = state
        self.instructions_executed = instructions_executed
        self.elapsed_ns = elapsed_ns
        self.coherence_exceeded = coherence_exceeded

    def bit(self, name):
        """Read one classical bit by name."""
        return self.classical_bits[name]

    def bits_as_int(self, names):
        """Pack named classical bits (first name = LSB) into an integer."""
        value = 0
        for pos, name in enumerate(names):
            value |= int(self.classical_bits[name]) << pos
        return value


def assemble(circuit):
    """Lower a circuit into a straight-line instruction stream + halt."""
    program = []
    for op in circuit.ops:
        if isinstance(op, MeasureOp):
            program.append(Instruction("measure", op=op))
        elif isinstance(op, GateOp):
            program.append(Instruction("gate", op=op))
        else:
            raise MicroArchError("cannot assemble op %r" % (op,))
    program.append(Instruction("halt"))
    return program


class MicroArchitecture:
    """Executes instruction streams against a statevector backend.

    Parameters
    ----------
    num_qubits : int
        Physical qubit count of the attached chip.
    durations_ns : dict, optional
        Overrides for :data:`DEFAULT_DURATIONS_NS`.
    coherence_ns : float, optional
        Coherence budget used for the timing flag.
    """

    def __init__(self, num_qubits, durations_ns=None,
                 coherence_ns=DEFAULT_COHERENCE_NS):
        self.num_qubits = int(num_qubits)
        self.durations_ns = dict(DEFAULT_DURATIONS_NS)
        if durations_ns:
            self.durations_ns.update(durations_ns)
        self.coherence_ns = float(coherence_ns)

    def _duration(self, instruction):
        if instruction.kind == "measure":
            return self.durations_ns["measure"]
        if instruction.kind == "gate":
            width = len(instruction.op.qubits)
            if width == 1:
                return self.durations_ns["single_qubit"]
            if width == 2:
                return self.durations_ns["two_qubit"]
            return self.durations_ns["macro"]
        return 0.0

    def execute(self, program, rng=None, max_instructions=1_000_000):
        """Run an assembled ``program``; returns :class:`ExecutionResult`.

        Branch instructions jump when the named classical bit equals the
        expected value.  A runaway program (no halt within
        ``max_instructions``) raises :class:`MicroArchError`.
        """
        from ..core.rngs import make_rng

        # coerce once so successive measurements draw from one stream
        # (an integer seed re-coerced per measurement would correlate
        # every measurement outcome)
        rng = make_rng(rng)
        state = StateVector(self.num_qubits)
        cbits = {}
        pc = 0
        executed = 0
        elapsed = 0.0
        while True:
            if pc < 0 or pc >= len(program):
                raise MicroArchError("program counter %d out of range" % pc)
            if executed > max_instructions:
                raise MicroArchError(
                    "program exceeded %d instructions" % max_instructions)
            instruction = program[pc]
            executed += 1
            elapsed += self._duration(instruction)
            if instruction.kind == "halt":
                break
            if instruction.kind == "gate":
                op = instruction.op
                if op.permutation is not None:
                    state.apply_permutation(op.permutation, op.qubits)
                else:
                    state.apply_gate(op.resolved_matrix(), op.qubits)
                pc += 1
            elif instruction.kind == "measure":
                op = instruction.op
                cbits[op.cbit] = state.measure(op.qubit, rng=rng)
                pc += 1
            elif instruction.kind == "branch":
                cbit, expected = instruction.condition
                if cbits.get(cbit, 0) == expected:
                    pc = instruction.target
                else:
                    pc += 1
            else:
                raise MicroArchError("unknown instruction kind %r"
                                     % instruction.kind)
        return ExecutionResult(
            classical_bits=cbits,
            state=state,
            instructions_executed=executed,
            elapsed_ns=elapsed,
            coherence_exceeded=elapsed > self.coherence_ns,
        )

    def execute_circuit(self, circuit, rng=None):
        """Assemble and execute a circuit in one call."""
        if circuit.num_qubits > self.num_qubits:
            raise MicroArchError(
                "circuit needs %d qubits, chip has %d"
                % (circuit.num_qubits, self.num_qubits)
            )
        return self.execute(assemble(circuit), rng=rng)
