"""Micro-architecture layer: executes a well-defined quantum instruction set.

Section II.B: "The requirements of such a device include: a compiler,
runtime support, and most importantly a micro-architecture that executes a
well-defined set of quantum instructions."  This module is that
micro-architecture, modelled after QuMA-style control processors:

* an instruction memory holding :class:`Instruction` objects (quantum ops,
  measurements, and classical control: branch / halt),
* a classical register file written by measurement results,
* a timing model with per-gate durations, so each kernel execution reports
  wall-clock on-chip time alongside instruction counts,
* a decoherence budget check: if the issued schedule exceeds the chip's
  coherence time the execution is flagged (results still computed by the
  ideal backend, mirroring how architectural simulators separate timing
  from function).
"""


import numpy as np

from ..core.exceptions import MicroArchError
from .circuit import GateOp, MeasureOp
from .state import BatchedStateVector, StateVector

#: Default gate durations in nanoseconds, loosely following published
#: superconducting-qubit numbers (single-qubit ~20 ns, two-qubit ~40 ns,
#: measurement ~300 ns).
DEFAULT_DURATIONS_NS = {
    "single_qubit": 20.0,
    "two_qubit": 40.0,
    "macro": 200.0,
    "measure": 300.0,
}

#: Default T2-style coherence budget per qubit, nanoseconds.
DEFAULT_COHERENCE_NS = 50_000.0


class Instruction:
    """One decoded micro-architecture instruction.

    ``kind`` is one of ``"gate"``, ``"measure"``, ``"branch"``, ``"halt"``.
    Gate instructions carry the originating :class:`GateOp`; measure
    instructions carry a :class:`MeasureOp`; branches carry a classical
    condition ``(cbit, value)`` and a target program counter.
    """

    __slots__ = ("kind", "op", "condition", "target")

    def __init__(self, kind, op=None, condition=None, target=None):
        self.kind = kind
        self.op = op
        self.condition = condition
        self.target = target

    def __repr__(self):
        if self.kind == "branch":
            return "Instruction(branch if %s==%d to %d)" % (
                self.condition[0], self.condition[1], self.target)
        return "Instruction(%s, %r)" % (self.kind, self.op)


class ExecutionResult:
    """Outcome of one kernel execution on the micro-architecture.

    Attributes
    ----------
    classical_bits : dict
        Final classical register file (cbit name -> 0/1).
    state : StateVector
        Final quantum state (exposed by the simulator backend only).
    instructions_executed : int
        Dynamic instruction count.
    elapsed_ns : float
        Modelled on-chip execution time.
    coherence_exceeded : bool
        True when ``elapsed_ns`` exceeded the coherence budget.
    """

    def __init__(self, classical_bits, state, instructions_executed,
                 elapsed_ns, coherence_exceeded):
        self.classical_bits = classical_bits
        self.state = state
        self.instructions_executed = instructions_executed
        self.elapsed_ns = elapsed_ns
        self.coherence_exceeded = coherence_exceeded

    def bit(self, name):
        """Read one classical bit by name."""
        return self.classical_bits[name]

    def bits_as_int(self, names):
        """Pack named classical bits (first name = LSB) into an integer."""
        value = 0
        for pos, name in enumerate(names):
            value |= int(self.classical_bits[name]) << pos
        return value


def assemble(circuit):
    """Lower a circuit into a straight-line instruction stream + halt."""
    program = []
    for op in circuit.ops:
        if isinstance(op, MeasureOp):
            program.append(Instruction("measure", op=op))
        elif isinstance(op, GateOp):
            program.append(Instruction("gate", op=op))
        else:
            raise MicroArchError("cannot assemble op %r" % (op,))
    program.append(Instruction("halt"))
    return program


class MicroArchitecture:
    """Executes instruction streams against a statevector backend.

    Parameters
    ----------
    num_qubits : int
        Physical qubit count of the attached chip.
    durations_ns : dict, optional
        Overrides for :data:`DEFAULT_DURATIONS_NS`.
    coherence_ns : float, optional
        Coherence budget used for the timing flag.
    """

    def __init__(self, num_qubits, durations_ns=None,
                 coherence_ns=DEFAULT_COHERENCE_NS):
        self.num_qubits = int(num_qubits)
        self.durations_ns = dict(DEFAULT_DURATIONS_NS)
        if durations_ns:
            self.durations_ns.update(durations_ns)
        self.coherence_ns = float(coherence_ns)

    def _duration(self, instruction):
        if instruction.kind == "measure":
            return self.durations_ns["measure"]
        if instruction.kind == "gate":
            width = len(instruction.op.qubits)
            if width == 1:
                return self.durations_ns["single_qubit"]
            if width == 2:
                return self.durations_ns["two_qubit"]
            return self.durations_ns["macro"]
        return 0.0

    def execute(self, program, rng=None, max_instructions=1_000_000):
        """Run an assembled ``program``; returns :class:`ExecutionResult`.

        Branch instructions jump when the named classical bit equals the
        expected value.  A runaway program (no halt within
        ``max_instructions``) raises :class:`MicroArchError`.
        """
        from ..core.rngs import make_rng

        # coerce once so successive measurements draw from one stream
        # (an integer seed re-coerced per measurement would correlate
        # every measurement outcome)
        rng = make_rng(rng)
        state = StateVector(self.num_qubits)
        cbits = {}
        pc = 0
        executed = 0
        elapsed = 0.0
        while True:
            if pc < 0 or pc >= len(program):
                raise MicroArchError("program counter %d out of range" % pc)
            if executed > max_instructions:
                raise MicroArchError(
                    "program exceeded %d instructions" % max_instructions)
            instruction = program[pc]
            executed += 1
            elapsed += self._duration(instruction)
            if instruction.kind == "halt":
                break
            if instruction.kind == "gate":
                op = instruction.op
                if op.permutation is not None:
                    state.apply_permutation(op.permutation, op.qubits)
                else:
                    state.apply_gate(op.resolved_matrix(), op.qubits)
                pc += 1
            elif instruction.kind == "measure":
                op = instruction.op
                cbits[op.cbit] = state.measure(op.qubit, rng=rng)
                pc += 1
            elif instruction.kind == "branch":
                cbit, expected = instruction.condition
                if cbits.get(cbit, 0) == expected:
                    pc = instruction.target
                else:
                    pc += 1
            else:
                raise MicroArchError("unknown instruction kind %r"
                                     % instruction.kind)
        return ExecutionResult(
            classical_bits=cbits,
            state=state,
            instructions_executed=executed,
            elapsed_ns=elapsed,
            coherence_exceeded=elapsed > self.coherence_ns,
        )

    # -- batched shot execution ---------------------------------------------

    #: Upper bound on live prefix-tree amplitudes (complex numbers) before
    #: execute_shots abandons memoization for the plain per-shot sweep.
    PREFIX_TREE_BUDGET = 2 ** 22

    def _decompose_straight_line(self, program):
        """Split a straight-line program into measure-delimited segments.

        Returns ``(segments, measures, executed, elapsed)`` where
        ``segments[i]`` is the list of :class:`GateOp` between measure
        ``i-1`` and measure ``i`` (``segments[0]`` is the prologue, the
        last segment the tail before halt), and ``executed`` / ``elapsed``
        are the dynamic instruction count and modelled time -- identical
        for every shot of a straight-line program.  Returns ``None`` when
        the program branches (or never halts), in which case callers fall
        back to the scalar interpreter.
        """
        segments = [[]]
        measures = []
        executed = 0
        elapsed = 0.0
        for instruction in program:
            executed += 1
            elapsed += self._duration(instruction)
            if instruction.kind == "halt":
                return segments, measures, executed, elapsed
            if instruction.kind == "gate":
                segments[-1].append(instruction.op)
            elif instruction.kind == "measure":
                measures.append(instruction.op)
                segments.append([])
            else:
                return None
        return None

    @staticmethod
    def _segment_plan(ops, fuse):
        """Lower a gate segment to ``(kind, payload, qubits)`` steps.

        With ``fuse`` set, runs of consecutive single-qubit matrix gates
        on the same qubit collapse into one product matrix, so the
        statevector sweep pays one 2x2 application per run instead of one
        per gate.
        """
        plan = []
        for op in ops:
            if op.permutation is not None:
                plan.append(("perm", op.permutation, op.qubits))
                continue
            matrix = op.resolved_matrix()
            if fuse and plan and plan[-1][0] == "gate" \
                    and len(op.qubits) == 1 and plan[-1][2] == op.qubits:
                plan[-1] = ("gate", matrix @ plan[-1][1], op.qubits)
            else:
                plan.append(("gate", matrix, op.qubits))
        return plan

    @staticmethod
    def _apply_plan(state, plan):
        """Run one segment plan against a (batched or scalar) statevector."""
        for kind, payload, qubits in plan:
            if kind == "perm":
                state.apply_permutation(payload, qubits)
            else:
                state.apply_gate(payload, qubits)
        return state

    def _run_plans_per_shot(self, plans, measures, uniforms, executed,
                            elapsed):
        """Reference sweep: one scalar statevector per shot, no memoization.

        Consumes the pre-drawn ``uniforms`` exactly like the prefix tree,
        so switching between the two paths cannot change any outcome.
        """
        results = []
        for draws in uniforms:
            state = self._apply_plan(StateVector(self.num_qubits), plans[0])
            cbits = {}
            for index, measure in enumerate(measures):
                p1 = state.probability_of(measure.qubit, 1)
                outcome = 1 if draws[index] < p1 else 0
                state.collapse(measure.qubit, outcome)
                cbits[measure.cbit] = outcome
                self._apply_plan(state, plans[index + 1])
            results.append(ExecutionResult(
                classical_bits=cbits,
                state=state,
                instructions_executed=executed,
                elapsed_ns=elapsed,
                coherence_exceeded=elapsed > self.coherence_ns,
            ))
        return results

    def execute_shots(self, program, shots, rng=None,
                      max_instructions=1_000_000, fuse=True):
        """Run ``program`` for ``shots`` repetitions, sharing gate work.

        Bit-identical to ``[self.execute(program, rng=rng) for _ in
        range(shots)]`` up to single-qubit fusion (disable with
        ``fuse=False`` for exact parity): the uniform deviates are drawn
        in the same shot-major order the scalar loop consumes them, and
        every amplitude update is either the scalar operation itself or a
        batched GEMM whose per-member columns match it bitwise.

        The win comes from memoizing on measurement prefixes: shots that
        have produced the same outcomes so far share one statevector, so
        each gate segment is applied once per *distinct* history (batched
        across histories) instead of once per shot.  Programs with
        branches fall back to the scalar interpreter; prefix trees wider
        than :data:`PREFIX_TREE_BUDGET` amplitudes fall back to an
        unmemoized per-shot sweep that consumes the identical random
        stream.
        """
        from ..core.rngs import make_rng

        rng = make_rng(rng)
        shots = int(shots)
        if shots < 0:
            raise ValueError("shots must be non-negative")
        decomposition = self._decompose_straight_line(program)
        if decomposition is None or len(program) - 1 > max_instructions:
            return [self.execute(program, rng=rng,
                                 max_instructions=max_instructions)
                    for _ in range(shots)]
        segments, measures, executed, elapsed = decomposition
        plans = [self._segment_plan(ops, fuse) for ops in segments]
        # One uniform per (shot, measure), drawn shot-major: exactly the
        # values (and final generator state) of the scalar loop's
        # per-measure rng.random() calls.
        uniforms = rng.random((shots, len(measures)))
        if shots == 0:
            return []

        dim = 2 ** self.num_qubits
        states = self._apply_plan(
            BatchedStateVector(self.num_qubits, batch=1), plans[0])
        node_of_shot = np.zeros(shots, dtype=np.int64)
        outcomes = np.zeros((shots, len(measures)), dtype=np.int64)
        for index, measure in enumerate(measures):
            p1 = states.probability_of(measure.qubit, 1)
            shot_outcomes = (uniforms[:, index]
                             < p1[node_of_shot]).astype(np.int64)
            outcomes[:, index] = shot_outcomes
            # Children = distinct (parent node, outcome) pairs still
            # reachable by some shot; dead branches are dropped, which is
            # what keeps the tree narrow for concentrated distributions.
            child_keys = node_of_shot * 2 + shot_outcomes
            unique_keys, node_of_shot = np.unique(child_keys,
                                                  return_inverse=True)
            if len(unique_keys) * dim > self.PREFIX_TREE_BUDGET:
                return self._run_plans_per_shot(plans, measures, uniforms,
                                                executed, elapsed)
            states = BatchedStateVector(
                self.num_qubits,
                amplitudes=states.amplitudes[unique_keys // 2])
            states.collapse(measure.qubit, unique_keys % 2)
            self._apply_plan(states, plans[index + 1])

        results = []
        for shot in range(shots):
            cbits = {}
            for index, measure in enumerate(measures):
                cbits[measure.cbit] = int(outcomes[shot, index])
            results.append(ExecutionResult(
                classical_bits=cbits,
                state=states.member(node_of_shot[shot]),
                instructions_executed=executed,
                elapsed_ns=elapsed,
                coherence_exceeded=elapsed > self.coherence_ns,
            ))
        return results

    def execute_circuit(self, circuit, rng=None):
        """Assemble and execute a circuit in one call."""
        if circuit.num_qubits > self.num_qubits:
            raise MicroArchError(
                "circuit needs %d qubits, chip has %d"
                % (circuit.num_qubits, self.num_qubits)
            )
        return self.execute(assemble(circuit), rng=rng)
