"""Adiabatic quantum computation (the paper's intro, ref. [35]).

"quantum computing [34] and adiabatic computation [35] are some of the
better known emerging computing technologies which use quantum
mechanical properties to resolve classical problems."

The adiabatic model evolves a register under the interpolating
Hamiltonian

    H(s) = (1 - s) * H_driver + s * H_problem,   s: 0 -> 1

with ``H_driver = -sum_i X_i`` (transverse field, ground state |+...+>)
and ``H_problem`` the diagonal Ising cost whose ground state encodes the
answer.  By the adiabatic theorem, slow evolution keeps the register in
the instantaneous ground state; measuring at s = 1 reads the optimum.

The simulator integrates the Schrodinger equation with a first-order
split-operator (Trotter) scheme: the diagonal problem propagator is
exact per step, the driver propagator factorizes into single-qubit X
rotations.  Dense statevector scale (<= ~16 spins) -- enough to study
success probability vs annealing time and to compare against simulated
annealing and the DMM on identical Ising instances (the paper's D-Wave
references make this comparison canonical).
"""

import math

import numpy as np

from ..core.exceptions import QuantumError
from ..core.rngs import make_rng
from ..core.sat_instances import ising_energy
from . import gates
from .state import StateVector


def ising_diagonal(couplings, num_spins, fields=None):
    """Energy of every computational basis state, as a vector.

    Basis state bit b_i = 1 encodes spin s_i = +1 (bit 0 -> s = -1).
    """
    if num_spins > 20:
        raise QuantumError("diagonal construction limited to 20 spins")
    size = 2 ** num_spins
    indices = np.arange(size)
    spins = np.where((indices[:, None] >> np.arange(num_spins)) & 1,
                     1.0, -1.0)
    energies = np.zeros(size)
    for (i, j), coupling in couplings.items():
        energies += coupling * spins[:, i] * spins[:, j]
    if fields is not None:
        energies += spins @ np.asarray(fields, dtype=float)
    return energies


class AdiabaticResult:
    """Outcome of one annealing run.

    Attributes
    ----------
    spins : numpy.ndarray
        Measured +-1 configuration.
    energy : float
        Its Ising energy.
    ground_energy : float
        Exact ground energy of the problem Hamiltonian (from the
        diagonal -- available because the register is simulable).
    success_probability : float
        Probability mass on ground states in the final wavefunction.
    total_time : float
        Annealing time T used.
    steps : int
        Trotter steps taken.
    """

    def __init__(self, spins, energy, ground_energy, success_probability,
                 total_time, steps):
        self.spins = spins
        self.energy = float(energy)
        self.ground_energy = float(ground_energy)
        self.success_probability = float(success_probability)
        self.total_time = float(total_time)
        self.steps = int(steps)

    @property
    def reached_ground(self):
        """True when the measured state attains the ground energy."""
        return self.energy <= self.ground_energy + 1e-9

    def __repr__(self):
        return ("AdiabaticResult(energy=%g, ground=%g, p_success=%.3f)"
                % (self.energy, self.ground_energy,
                   self.success_probability))


def anneal_quantum(couplings, num_spins, fields=None, total_time=20.0,
                   steps=400, rng=None):
    """Adiabatically evolve and measure an Ising problem register.

    Parameters
    ----------
    couplings, fields :
        The Ising problem (same conventions as
        :func:`repro.core.sat_instances.ising_energy`).
    total_time : float
        Annealing time T (larger = more adiabatic = higher success).
    steps : int
        First-order Trotter steps.

    Returns an :class:`AdiabaticResult`.
    """
    if num_spins < 1:
        raise QuantumError("need at least one spin")
    if num_spins > 14:
        raise QuantumError("adiabatic simulator limited to 14 spins")
    if total_time <= 0 or steps < 1:
        raise QuantumError("total_time and steps must be positive")
    rng = make_rng(rng)
    diagonal = ising_diagonal(couplings, num_spins, fields)
    ground_energy = float(diagonal.min())
    ground_mask = np.isclose(diagonal, ground_energy)

    # start in the driver ground state |+...+>
    size = 2 ** num_spins
    state = StateVector(num_spins,
                        np.full(size, 1.0 / math.sqrt(size), dtype=complex))
    dt = total_time / steps
    for step in range(steps):
        s = (step + 0.5) / steps
        # problem propagator: exact diagonal phase
        state.amplitudes *= np.exp(-1j * s * diagonal * dt)
        # driver propagator: product of single-qubit X rotations
        # exp(+i (1-s) dt X) == rx(-2 (1-s) dt)
        rotation = gates.rx(-2.0 * (1.0 - s) * dt)
        for qubit in range(num_spins):
            state.apply_gate(rotation, [qubit])
    probabilities = state.probabilities()
    success_probability = float(probabilities[ground_mask].sum())
    outcome = int(rng.choice(size, p=probabilities / probabilities.sum()))
    spins = np.where((outcome >> np.arange(num_spins)) & 1, 1, -1)
    energy = ising_energy(couplings, spins, fields)
    return AdiabaticResult(spins, energy, ground_energy,
                           success_probability, total_time, steps)


def success_vs_annealing_time(couplings, num_spins, times, fields=None,
                              steps_per_unit_time=25, rng=None):
    """The adiabatic theorem made visible: p_success vs annealing time T.

    Returns ``[(T, success_probability)]``; slow enough evolution pushes
    the success probability toward 1.
    """
    rng = make_rng(rng)
    rows = []
    for total_time in times:
        steps = max(50, int(steps_per_unit_time * total_time))
        result = anneal_quantum(couplings, num_spins, fields=fields,
                                total_time=total_time, steps=steps,
                                rng=rng)
        rows.append((float(total_time), result.success_probability))
    return rows
