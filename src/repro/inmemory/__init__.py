"""In-memory computing on resistive crossbars (the paper's intro survey).

The introduction singles out in-memory computation as the style that
"effectively eliminates the von Neumann bottleneck", citing the authors'
own programmable logic-in-memory line ([1] "A PLIM computer for the
internet of things", [21] "The programmable logic-in-memory (PLIM)
computer") and ReRAM-based processing ([22]).  This package builds that
substrate:

* :mod:`repro.inmemory.memristor` -- bipolar resistive switching device,
* :mod:`repro.inmemory.crossbar` -- the array: digital row/column writes,
  stateful-logic pulses, and analog current-summing reads,
* :mod:`repro.inmemory.plim` -- the resistive-majority (RM3) instruction
  of the PLIM computer, a compiler from Boolean gates to RM3 programs,
  and in-memory arithmetic built from it,
* :mod:`repro.inmemory.vmm` -- analog vector-matrix multiplication with
  conductance encoding (the in-memory neural-network primitive the intro
  attributes to ReRAM/PCM arrays) and a data-movement cost model that
  makes the von Neumann bottleneck argument quantitative,
* :mod:`repro.inmemory.neuromorphic` -- the intro's neuromorphic thread
  closed onto the same substrate: a spiking (LIF) classifier whose
  synapses are crossbar conductances ([16]-[20]).
"""

from .crossbar import Crossbar
from .memristor import HRS, LRS, Memristor
from .plim import (
    PlimComputer,
    PlimProgram,
    compile_expression,
    plim_full_adder,
)
from .neuromorphic import (
    LifLayer,
    SpikingClassifier,
    prototype_patterns,
    rate_encode,
    train_rate_weights,
)
from .vmm import AnalogVmm, data_movement_comparison

__all__ = [
    "Crossbar",
    "HRS",
    "LRS",
    "Memristor",
    "PlimComputer",
    "PlimProgram",
    "compile_expression",
    "plim_full_adder",
    "LifLayer",
    "SpikingClassifier",
    "prototype_patterns",
    "rate_encode",
    "train_rate_weights",
    "AnalogVmm",
    "data_movement_comparison",
]
