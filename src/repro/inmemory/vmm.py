"""Analog in-memory vector-matrix multiplication.

The introduction's argument for in-memory computing is the von Neumann
bottleneck: "the limitation on processor speed due to data transfer".
A resistive crossbar attacks it directly -- the weight matrix lives as
conductances and the multiply-accumulate happens as bitline current
summation, so the weights *never move*.

:class:`AnalogVmm` programs a real-valued matrix onto differential
conductance pairs (positive and negative columns), performs the multiply
via :meth:`Crossbar.analog_read`, and reports accuracy against the exact
product under programming variability and read noise.
:func:`data_movement_comparison` makes the bottleneck argument
quantitative: bytes moved per multiply for a load-store architecture vs
the crossbar.
"""

import time

import numpy as np

from ..core import profiling, telemetry
from ..core.rngs import make_rng
from .crossbar import Crossbar
from .memristor import Memristor, MemristorError


class AnalogVmm:
    """A weight matrix stored as differential conductance pairs.

    Parameters
    ----------
    weights : array-like, shape (n_in, n_out)
        Real matrix to program.
    g_min, g_max : float
        Conductance window of the devices (siemens).
    variability : float
        Fractional programming error per device.
    rng : seed/Generator
        Randomness for programming errors.
    scale : float, optional
        Weight normalization scale.  Defaults to ``max|weights|``;
        :class:`TiledVmm` overrides it so every tile shares the global
        matrix scale (a tile's local maximum would silently change the
        conductance encoding of its weights).
    """

    def __init__(self, weights, g_min=1e-6, g_max=1e-4, variability=0.0,
                 rng=None, scale=None):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise MemristorError("weights must be a 2-D matrix")
        if g_max <= g_min or g_min <= 0:
            raise MemristorError("need 0 < g_min < g_max")
        self.weights = weights
        self.g_min = float(g_min)
        self.g_max = float(g_max)
        rng = make_rng(rng)
        n_in, n_out = weights.shape
        if scale is None:
            scale = float(np.max(np.abs(weights))) or 1.0
        elif scale <= 0.0:
            raise MemristorError("scale must be positive")
        self.scale = float(scale)
        # differential encoding: column 2j carries positive part,
        # column 2j+1 the negative part
        self.crossbar = Crossbar(
            n_in, 2 * n_out,
            device_factory=lambda: Memristor(r_on=1.0 / g_max,
                                             r_off=1.0 / g_min))
        span = self.g_max - self.g_min
        with telemetry.span("inmemory.vmm.program", rows=n_in,
                            cols=2 * n_out):
            self._program(weights, span, variability, rng)
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter("inmemory.vmm.arrays_programmed").inc()
            registry.counter("inmemory.vmm.cells_programmed").inc(
                2 * n_in * n_out)

    def _program(self, weights, span, variability, rng):
        n_in, n_out = weights.shape
        for i in range(n_in):
            for j in range(n_out):
                weight = weights[i, j] / self.scale  # in [-1, 1]
                positive = self.g_min + span * max(0.0, weight)
                negative = self.g_min + span * max(0.0, -weight)
                self.crossbar.cell(i, 2 * j).program_conductance(
                    positive, self.g_min, self.g_max,
                    variability=variability, rng=rng)
                self.crossbar.cell(i, 2 * j + 1).program_conductance(
                    negative, self.g_min, self.g_max,
                    variability=variability, rng=rng)

    def multiply(self, vector, v_read=0.2, noise_sigma=0.0, rng=None):
        """Compute ``vector @ weights`` through the array.

        The input is encoded as wordline voltages (scaled to ``v_read``
        full range), bitline currents are differenced pairwise, and the
        result is rescaled to weight units.
        """
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.weights.shape[0],):
            raise MemristorError("input length mismatch")
        registry = telemetry.get_registry()
        enabled = registry.enabled
        if enabled:
            n_in, n_out = self.weights.shape
            registry.counter("inmemory.vmm.multiplies").inc()
            registry.counter("inmemory.vmm.macs").inc(n_in * n_out)
            start = time.perf_counter()
        v_scale = float(np.max(np.abs(vector))) or 1.0
        voltages = vector / v_scale * v_read
        currents = self.crossbar.analog_read(voltages,
                                             noise_sigma=noise_sigma,
                                             rng=rng)
        differential = currents[0::2] - currents[1::2]
        span = self.g_max - self.g_min
        result = differential * (v_scale / v_read) * (self.scale / span)
        if enabled:
            # crossbar throughput: multiply-accumulates per wall second
            profiling.record_throughput("inmemory.vmm.ops", n_in * n_out,
                                        time.perf_counter() - start)
        return result

    def multiply_batch(self, vectors, v_read=0.2, noise_sigma=0.0,
                       rng=None):
        """Compute ``vectors[b] @ weights`` for a stack of inputs.

        Bit-identical to calling :meth:`multiply` on each row with the
        same generator: per-row voltage scaling, the per-row
        matrix-vector products (via
        :meth:`Crossbar.analog_read_batch`), and the per-read noise
        draw order all match the scalar path exactly -- batching only
        amortizes the Python, telemetry, and conductance-lookup
        overhead across the stack.
        """
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self.weights.shape[0]:
            raise MemristorError("need shape (batch, n_in) inputs")
        batch = vectors.shape[0]
        registry = telemetry.get_registry()
        enabled = registry.enabled
        n_in, n_out = self.weights.shape
        if enabled:
            registry.counter("inmemory.vmm.multiplies").inc(batch)
            registry.counter("inmemory.vmm.macs").inc(batch * n_in * n_out)
            start = time.perf_counter()
        v_scales = np.empty(batch)
        for index in range(batch):
            v_scales[index] = (float(np.max(np.abs(vectors[index])))
                               or 1.0)
        voltages = vectors / v_scales[:, None] * v_read
        currents = self.crossbar.analog_read_batch(
            voltages, noise_sigma=noise_sigma, rng=rng)
        differential = currents[:, 0::2] - currents[:, 1::2]
        span = self.g_max - self.g_min
        results = (differential * (v_scales / v_read)[:, None]
                   * (self.scale / span))
        if enabled:
            profiling.record_throughput("inmemory.vmm.ops",
                                        batch * n_in * n_out,
                                        time.perf_counter() - start)
        return results

    def relative_error(self, vector, **kwargs):
        """||analog - exact|| / ||exact|| for one input vector."""
        exact = np.asarray(vector, dtype=float) @ self.weights
        analog = self.multiply(vector, **kwargs)
        norm = np.linalg.norm(exact)
        if norm == 0.0:
            return float(np.linalg.norm(analog))
        return float(np.linalg.norm(analog - exact) / norm)


class TiledVmm:
    """A large matrix split across a grid of fixed-size crossbar tiles.

    Real arrays are bounded by wire resistance and sneak paths, so big
    matrices are tiled: tile ``(bi, bj)`` stores the weight block
    ``weights[bi*T:(bi+1)*T, bj*T:(bj+1)*T]`` on its own
    :class:`AnalogVmm`, every tile sharing the *global* weight scale so
    partial products are in common units.  A multiply feeds each input
    slice to its tile row and accumulates partial outputs in row-major
    tile order; :meth:`naive_multiply` is the retained scalar reference
    -- the same accumulation computed per-MAC from freshly rebuilt
    conductance matrices -- that the equivalence tier holds the tiled
    path bit-identical to.

    Parameters
    ----------
    weights : array-like, shape (n_in, n_out)
    tile_size : int
        Maximum rows/cols per tile.
    Remaining keyword arguments match :class:`AnalogVmm`; the
    programming ``rng`` is consumed in row-major tile order.
    """

    def __init__(self, weights, tile_size=32, g_min=1e-6, g_max=1e-4,
                 variability=0.0, rng=None):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise MemristorError("weights must be a 2-D matrix")
        if tile_size < 1:
            raise MemristorError("tile_size must be positive")
        self.weights = weights
        self.tile_size = int(tile_size)
        self.scale = float(np.max(np.abs(weights))) or 1.0
        self.g_min = float(g_min)
        self.g_max = float(g_max)
        rng = make_rng(rng)
        n_in, n_out = weights.shape
        self._row_edges = list(range(0, n_in, self.tile_size)) + [n_in]
        self._col_edges = list(range(0, n_out, self.tile_size)) + [n_out]
        self.tiles = []
        for bi in range(len(self._row_edges) - 1):
            row_tiles = []
            r0, r1 = self._row_edges[bi], self._row_edges[bi + 1]
            for bj in range(len(self._col_edges) - 1):
                c0, c1 = self._col_edges[bj], self._col_edges[bj + 1]
                row_tiles.append(AnalogVmm(
                    weights[r0:r1, c0:c1], g_min=g_min, g_max=g_max,
                    variability=variability, rng=rng, scale=self.scale))
            self.tiles.append(row_tiles)
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter("inmemory.vmm.tiled_arrays").inc()
            registry.counter("inmemory.vmm.tiles").inc(
                len(self.tiles) * len(self.tiles[0]))

    def _blocks(self):
        for bi in range(len(self._row_edges) - 1):
            r0, r1 = self._row_edges[bi], self._row_edges[bi + 1]
            for bj in range(len(self._col_edges) - 1):
                c0, c1 = self._col_edges[bj], self._col_edges[bj + 1]
                yield self.tiles[bi][bj], (r0, r1), (c0, c1)

    def multiply(self, vector, v_read=0.2, noise_sigma=0.0, rng=None):
        """``vector @ weights`` accumulated over tiles in row-major order."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.weights.shape[0],):
            raise MemristorError("input length mismatch")
        rng = make_rng(rng) if noise_sigma > 0.0 else rng
        result = np.zeros(self.weights.shape[1])
        for tile, (r0, r1), (c0, c1) in self._blocks():
            result[c0:c1] += tile.multiply(vector[r0:r1], v_read=v_read,
                                           noise_sigma=noise_sigma,
                                           rng=rng)
        return result

    def multiply_batch(self, vectors, v_read=0.2, noise_sigma=0.0,
                       rng=None):
        """Row-wise :meth:`multiply` over a ``(batch, n_in)`` stack."""
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self.weights.shape[0]:
            raise MemristorError("need shape (batch, n_in) inputs")
        rng = make_rng(rng) if noise_sigma > 0.0 else rng
        return np.stack([self.multiply(row, v_read=v_read,
                                       noise_sigma=noise_sigma, rng=rng)
                         for row in vectors])

    def naive_multiply(self, vector, v_read=0.2, noise_sigma=0.0,
                       rng=None):
        """Scalar reference path: per-tile MACs from fresh G matrices.

        Recomputes every partial product inline from
        :meth:`Crossbar.conductance_matrix` -- rebuilt from the cell
        objects on every call, bypassing the conductance cache and all
        :class:`AnalogVmm` plumbing -- drawing noise in the same
        per-tile order as :meth:`multiply`.  Kept as the
        differential-equivalence reference for the tiled fast path.
        """
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.weights.shape[0],):
            raise MemristorError("input length mismatch")
        rng = make_rng(rng) if noise_sigma > 0.0 else rng
        span = self.g_max - self.g_min
        result = np.zeros(self.weights.shape[1])
        for tile, (r0, r1), (c0, c1) in self._blocks():
            sub = vector[r0:r1]
            v_scale = float(np.max(np.abs(sub))) or 1.0
            voltages = sub / v_scale * v_read
            conductances = tile.crossbar.conductance_matrix()
            currents = voltages @ conductances
            if noise_sigma > 0.0:
                noise_rng = make_rng(rng)
                noise_scale = np.abs(currents) + 1e-12
                currents = currents + noise_rng.normal(
                    0.0, noise_sigma, size=currents.shape) * noise_scale
            differential = currents[0::2] - currents[1::2]
            partial = (differential * (v_scale / v_read)
                       * (self.scale / span))
            result[c0:c1] += partial
        return result


def data_movement_comparison(n_in, n_out, num_multiplies,
                             bytes_per_weight=1, bytes_per_activation=1):
    """Bytes moved across the memory interface: load-store vs in-memory.

    A load-store (von Neumann) pipeline fetches the whole weight matrix
    for every multiply (no on-chip reuse, the worst case the bottleneck
    argument targets) plus the activations; the crossbar moves weights
    once at programming time and then only activations.

    Returns a dict with both totals and their ratio.
    """
    weights_bytes = n_in * n_out * bytes_per_weight
    activations = (n_in + n_out) * bytes_per_activation
    von_neumann = num_multiplies * (weights_bytes + activations)
    in_memory = weights_bytes + num_multiplies * activations
    return {
        "von_neumann_bytes": von_neumann,
        "in_memory_bytes": in_memory,
        "ratio": von_neumann / in_memory,
        "weights_bytes": weights_bytes,
        "activation_bytes_per_multiply": activations,
    }
