"""Analog in-memory vector-matrix multiplication.

The introduction's argument for in-memory computing is the von Neumann
bottleneck: "the limitation on processor speed due to data transfer".
A resistive crossbar attacks it directly -- the weight matrix lives as
conductances and the multiply-accumulate happens as bitline current
summation, so the weights *never move*.

:class:`AnalogVmm` programs a real-valued matrix onto differential
conductance pairs (positive and negative columns), performs the multiply
via :meth:`Crossbar.analog_read`, and reports accuracy against the exact
product under programming variability and read noise.
:func:`data_movement_comparison` makes the bottleneck argument
quantitative: bytes moved per multiply for a load-store architecture vs
the crossbar.
"""

import time

import numpy as np

from ..core import profiling, telemetry
from ..core.rngs import make_rng
from .crossbar import Crossbar
from .memristor import Memristor, MemristorError


class AnalogVmm:
    """A weight matrix stored as differential conductance pairs.

    Parameters
    ----------
    weights : array-like, shape (n_in, n_out)
        Real matrix to program.
    g_min, g_max : float
        Conductance window of the devices (siemens).
    variability : float
        Fractional programming error per device.
    rng : seed/Generator
        Randomness for programming errors.
    """

    def __init__(self, weights, g_min=1e-6, g_max=1e-4, variability=0.0,
                 rng=None):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise MemristorError("weights must be a 2-D matrix")
        if g_max <= g_min or g_min <= 0:
            raise MemristorError("need 0 < g_min < g_max")
        self.weights = weights
        self.g_min = float(g_min)
        self.g_max = float(g_max)
        rng = make_rng(rng)
        n_in, n_out = weights.shape
        self.scale = float(np.max(np.abs(weights))) or 1.0
        # differential encoding: column 2j carries positive part,
        # column 2j+1 the negative part
        self.crossbar = Crossbar(
            n_in, 2 * n_out,
            device_factory=lambda: Memristor(r_on=1.0 / g_max,
                                             r_off=1.0 / g_min))
        span = self.g_max - self.g_min
        with telemetry.span("inmemory.vmm.program", rows=n_in,
                            cols=2 * n_out):
            self._program(weights, span, variability, rng)
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter("inmemory.vmm.arrays_programmed").inc()
            registry.counter("inmemory.vmm.cells_programmed").inc(
                2 * n_in * n_out)

    def _program(self, weights, span, variability, rng):
        n_in, n_out = weights.shape
        for i in range(n_in):
            for j in range(n_out):
                weight = weights[i, j] / self.scale  # in [-1, 1]
                positive = self.g_min + span * max(0.0, weight)
                negative = self.g_min + span * max(0.0, -weight)
                self.crossbar.cell(i, 2 * j).program_conductance(
                    positive, self.g_min, self.g_max,
                    variability=variability, rng=rng)
                self.crossbar.cell(i, 2 * j + 1).program_conductance(
                    negative, self.g_min, self.g_max,
                    variability=variability, rng=rng)

    def multiply(self, vector, v_read=0.2, noise_sigma=0.0, rng=None):
        """Compute ``vector @ weights`` through the array.

        The input is encoded as wordline voltages (scaled to ``v_read``
        full range), bitline currents are differenced pairwise, and the
        result is rescaled to weight units.
        """
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.weights.shape[0],):
            raise MemristorError("input length mismatch")
        registry = telemetry.get_registry()
        enabled = registry.enabled
        if enabled:
            n_in, n_out = self.weights.shape
            registry.counter("inmemory.vmm.multiplies").inc()
            registry.counter("inmemory.vmm.macs").inc(n_in * n_out)
            start = time.perf_counter()
        v_scale = float(np.max(np.abs(vector))) or 1.0
        voltages = vector / v_scale * v_read
        currents = self.crossbar.analog_read(voltages,
                                             noise_sigma=noise_sigma,
                                             rng=rng)
        differential = currents[0::2] - currents[1::2]
        span = self.g_max - self.g_min
        result = differential * (v_scale / v_read) * (self.scale / span)
        if enabled:
            # crossbar throughput: multiply-accumulates per wall second
            profiling.record_throughput("inmemory.vmm.ops", n_in * n_out,
                                        time.perf_counter() - start)
        return result

    def relative_error(self, vector, **kwargs):
        """||analog - exact|| / ||exact|| for one input vector."""
        exact = np.asarray(vector, dtype=float) @ self.weights
        analog = self.multiply(vector, **kwargs)
        norm = np.linalg.norm(exact)
        if norm == 0.0:
            return float(np.linalg.norm(analog))
        return float(np.linalg.norm(analog - exact) / norm)


def data_movement_comparison(n_in, n_out, num_multiplies,
                             bytes_per_weight=1, bytes_per_activation=1):
    """Bytes moved across the memory interface: load-store vs in-memory.

    A load-store (von Neumann) pipeline fetches the whole weight matrix
    for every multiply (no on-chip reuse, the worst case the bottleneck
    argument targets) plus the activations; the crossbar moves weights
    once at programming time and then only activations.

    Returns a dict with both totals and their ratio.
    """
    weights_bytes = n_in * n_out * bytes_per_weight
    activations = (n_in + n_out) * bytes_per_activation
    von_neumann = num_multiplies * (weights_bytes + activations)
    in_memory = weights_bytes + num_multiplies * activations
    return {
        "von_neumann_bytes": von_neumann,
        "in_memory_bytes": in_memory,
        "ratio": von_neumann / in_memory,
        "weights_bytes": weights_bytes,
        "activation_bytes_per_multiply": activations,
    }
