"""Neuromorphic inference on the in-memory crossbar (intro survey).

The introduction couples the two survey threads explicitly: spiking /
spintronic neural networks are "applications which are also examples of
in-memory computing" ([16]-[20]).  This module closes that loop on the
library's own substrate: a spiking classifier whose synaptic weights
live as crossbar conductances (:class:`~repro.inmemory.vmm.AnalogVmm`)
and whose neurons are leaky integrate-and-fire units.

Pipeline:

* inputs are rate-coded into Poisson-free deterministic spike trains
  (spike every ``1/rate`` steps -- keeps tests exact),
* each time step, input spikes drive one analog VMM through the array
  (the in-memory synaptic operation) and the currents charge LIF
  membranes,
* class = the output neuron with the most spikes in the window.

Training happens offline with a simple perceptron rule on rates (the
usual practice for inference-only neuromorphic hardware); the point
demonstrated here is the *in-memory inference*, with accuracy measured
under device variability.
"""

import numpy as np

from ..core.exceptions import ReproError
from ..core.rngs import make_rng
from .vmm import AnalogVmm


class NeuromorphicError(ReproError):
    """Raised for malformed spiking-network configurations."""


class LifLayer:
    """A layer of leaky integrate-and-fire neurons.

    Membrane update per step: ``v <- leak * v + current``; a neuron
    whose membrane crosses ``threshold`` emits a spike and resets to 0.
    """

    def __init__(self, size, threshold=1.0, leak=0.9):
        if size < 1:
            raise NeuromorphicError("layer needs at least one neuron")
        if not 0.0 <= leak < 1.0:
            raise NeuromorphicError("leak must be in [0, 1)")
        if threshold <= 0.0:
            raise NeuromorphicError("threshold must be positive")
        self.size = int(size)
        self.threshold = float(threshold)
        self.leak = float(leak)
        self.membrane = np.zeros(self.size)

    def reset(self):
        """Clear membrane state between samples."""
        self.membrane[:] = 0.0

    def step(self, current):
        """Advance one time step; returns the 0/1 spike vector."""
        current = np.asarray(current, dtype=float)
        if current.shape != (self.size,):
            raise NeuromorphicError("current width mismatch")
        self.membrane = self.leak * self.membrane + current
        spikes = (self.membrane >= self.threshold).astype(float)
        self.membrane[spikes > 0] = 0.0
        return spikes


def rate_encode(values, num_steps, max_rate=0.8):
    """Deterministic rate coding: value -> evenly spaced spikes.

    Returns an array of shape ``(num_steps, len(values))`` with spike
    density proportional to each (non-negative, normalized) value.
    """
    values = np.asarray(values, dtype=float)
    if np.any(values < 0):
        raise NeuromorphicError("rate coding needs non-negative values")
    peak = values.max() or 1.0
    rates = values / peak * max_rate
    trains = np.zeros((num_steps, len(values)))
    for index, rate in enumerate(rates):
        if rate <= 0.0:
            continue
        interval = 1.0 / rate
        ticks = np.arange(0.0, num_steps, interval).astype(int)
        trains[ticks[ticks < num_steps], index] = 1.0
    return trains


class SpikingClassifier:
    """A one-layer spiking classifier with in-memory synapses.

    Parameters
    ----------
    weights : array, shape (n_in, n_classes)
        Synaptic matrix, programmed onto the crossbar.
    variability : float
        Device programming error (fraction).
    threshold, leak : float
        LIF parameters of the output layer.
    gain : float
        Current scaling from VMM output into membrane units.
    """

    def __init__(self, weights, variability=0.0, threshold=1.0, leak=0.9,
                 gain=1.0, rng=None):
        weights = np.asarray(weights, dtype=float)
        self.synapses = AnalogVmm(weights, variability=variability,
                                  rng=rng)
        self.output_layer = LifLayer(weights.shape[1],
                                     threshold=threshold, leak=leak)
        self.gain = float(gain)

    def infer(self, sample, num_steps=60, noise_sigma=0.0, rng=None):
        """Classify one sample; returns ``(class, spike_counts)``."""
        rng = make_rng(rng)
        trains = rate_encode(sample, num_steps)
        self.output_layer.reset()
        counts = np.zeros(self.output_layer.size)
        for step in range(num_steps):
            current = self.gain * self.synapses.multiply(
                trains[step], noise_sigma=noise_sigma, rng=rng)
            counts += self.output_layer.step(current)
        return int(np.argmax(counts)), counts

    def accuracy(self, samples, labels, num_steps=60, noise_sigma=0.0,
                 rng=None):
        """Fraction of samples classified correctly."""
        rng = make_rng(rng)
        correct = 0
        for sample, label in zip(samples, labels):
            predicted, _counts = self.infer(sample, num_steps=num_steps,
                                            noise_sigma=noise_sigma,
                                            rng=rng)
            correct += int(predicted == label)
        return correct / len(labels)


def prototype_patterns(num_samples, side=4, num_classes=2, noise=0.05,
                       rng=None):
    """Noisy copies of class prototype images (a linearly separable task).

    Class ``c``'s prototype lights a distinct band of rows; samples are
    bit-flipped copies.  Unlike the stripe-orientation task (whose pixel
    marginals coincide across classes), this is the right difficulty for
    a single in-memory synaptic layer.

    Returns ``(samples, labels)`` with samples in {0,1}^(n, side^2).
    """
    rng = make_rng(rng)
    if num_classes < 2 or num_classes > side:
        raise NeuromorphicError("need 2 <= num_classes <= side")
    band = side // num_classes
    prototypes = []
    for cls in range(num_classes):
        image = np.zeros((side, side))
        image[cls * band:(cls + 1) * band, :] = 1.0
        prototypes.append(image.ravel())
    samples = np.zeros((num_samples, side * side))
    labels = np.zeros(num_samples, dtype=np.int64)
    for index in range(num_samples):
        cls = int(rng.integers(0, num_classes))
        flips = rng.random(side * side) < noise
        samples[index] = np.abs(prototypes[cls] - flips)
        labels[index] = cls
    return samples, labels


def train_rate_weights(samples, labels, num_classes, epochs=20,
                       learning_rate=0.05, rng=None):
    """Offline perceptron training of the synaptic matrix on rates.

    The standard flow for inference-only neuromorphic arrays: learn in
    software, program conductances once, infer in memory forever.
    """
    rng = make_rng(rng)
    samples = np.asarray(samples, dtype=float)
    num_features = samples.shape[1]
    weights = 0.01 * rng.normal(size=(num_features, num_classes))
    for _epoch in range(epochs):
        order = rng.permutation(len(samples))
        for index in order:
            sample = samples[index]
            scores = sample @ weights
            predicted = int(np.argmax(scores))
            target = labels[index]
            if predicted != target:
                weights[:, target] += learning_rate * sample
                weights[:, predicted] -= learning_rate * sample
    return weights
