"""The PLIM computer: programmable logic in memory ([1], [21]).

The paper's introduction cites the authors' PLIM line: a computer whose
*only* compute primitive is a resistive-majority instruction executed
inside the memory array.  The canonical instruction is

    RM3(X, Y, Z):   Z <- M3(X, not Y, Z)

where ``X`` arrives on the wordline, ``Y`` on the bitline (whose
polarity contributes the negation), and ``Z`` is the target cell whose
own state is the third majority input.  Together with SET/RESET, RM3 is
functionally complete:

    NOT y        = RM3(zero, y, target preset 1)   -> M(0, !y, 1) = !y
    a AND b      = RM3(a, !b-cell, target 0)       -> M(a, b, 0)  = a&b
    a OR  b      = RM3(a, !b-cell, target 1)       -> M(a, b, 1)  = a|b

(the compiler materializes the needed complements with NOT steps).

:class:`PlimComputer` executes :class:`PlimProgram` instruction lists on
a :class:`~repro.inmemory.crossbar.Crossbar`; :func:`compile_expression`
lowers Boolean expression trees to RM3 programs;
:func:`plim_full_adder` is the arithmetic showcase of the PLIM papers.
"""

from ..core.exceptions import ReproError
from .crossbar import Crossbar


class PlimError(ReproError):
    """Raised for malformed PLIM programs or expressions."""


class PlimProgram:
    """An ordered list of in-memory instructions.

    Instructions are tuples:

    * ``("set", cell)`` / ``("reset", cell)`` -- program a constant,
    * ``("write", cell, name)`` -- load a named input bit,
    * ``("rm3", x_cell, y_cell, z_cell)`` -- the majority update.

    Cells are linear indices into the crossbar (row-major).
    """

    def __init__(self):
        self.instructions = []
        self.input_cells = {}
        self.output_cells = {}
        self._next_cell = 0

    def allocate(self, count=1):
        """Reserve ``count`` fresh cells; returns the first index."""
        first = self._next_cell
        self._next_cell += count
        return first

    @property
    def cells_used(self):
        """Number of crossbar cells the program touches."""
        return self._next_cell

    def emit(self, instruction):
        """Append one instruction."""
        self.instructions.append(instruction)

    def declare_input(self, name):
        """Allocate a cell holding input ``name``; emits the load."""
        cell = self.allocate()
        self.input_cells[name] = cell
        self.emit(("write", cell, name))
        return cell

    def declare_output(self, name, cell):
        """Mark ``cell`` as carrying output ``name``."""
        self.output_cells[name] = cell

    def op_count(self):
        """Histogram of instruction kinds (the PLIM cost metric)."""
        counts = {}
        for instruction in self.instructions:
            counts[instruction[0]] = counts.get(instruction[0], 0) + 1
        return counts

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return "PlimProgram(instructions=%d, cells=%d)" % (
            len(self.instructions), self.cells_used)


class PlimComputer:
    """Executes PLIM programs on a crossbar.

    Parameters
    ----------
    crossbar : Crossbar, optional
        Sized automatically to the program when omitted.
    """

    def __init__(self, crossbar=None):
        self.crossbar = crossbar

    def _coords(self, cell):
        return divmod(cell, self.crossbar.cols)

    def _ensure_capacity(self, program):
        needed = program.cells_used
        if self.crossbar is None:
            cols = max(8, int(needed ** 0.5) + 1)
            rows = (needed + cols - 1) // cols
            self.crossbar = Crossbar(max(1, rows), cols)
        capacity = self.crossbar.rows * self.crossbar.cols
        if needed > capacity:
            raise PlimError("program needs %d cells, array has %d"
                            % (needed, capacity))

    def _rm3(self, x_cell, y_cell, z_cell, v_program=2.0):
        """Execute Z <- M3(X, not Y, Z) as array voltage pulses.

        The controller applies the wordline/bitline pattern; the
        *negation of Y comes from bitline polarity* (not from reading a
        complemented copy), and the conditional switching outcome is the
        three-way majority -- the electrical behaviour established in
        the PLIM papers.  Here the divider outcome is evaluated on the
        device states and applied as a full programming pulse.
        """
        x_state = self.crossbar.read_bit(*self._coords(x_cell))
        y_state = self.crossbar.read_bit(*self._coords(y_cell))
        z_row, z_col = self._coords(z_cell)
        z_state = self.crossbar.read_bit(z_row, z_col)
        votes = x_state + (1 - y_state) + z_state
        majority = 1 if votes >= 2 else 0
        self.crossbar.cell(z_row, z_col).apply_voltage(
            v_program if majority else -v_program)
        return majority

    def run(self, program, inputs):
        """Execute ``program`` with named input bits; returns outputs.

        Every named input must be supplied; outputs are read from the
        array after the last instruction.
        """
        self._ensure_capacity(program)
        missing = set(program.input_cells) - set(inputs)
        if missing:
            raise PlimError("missing inputs: %s" % sorted(missing))
        for instruction in program.instructions:
            kind = instruction[0]
            if kind == "set":
                row, col = self._coords(instruction[1])
                self.crossbar.write_bit(row, col, 1)
            elif kind == "reset":
                row, col = self._coords(instruction[1])
                self.crossbar.write_bit(row, col, 0)
            elif kind == "write":
                row, col = self._coords(instruction[1])
                self.crossbar.write_bit(row, col,
                                        1 if inputs[instruction[2]] else 0)
            elif kind == "rm3":
                self._rm3(*instruction[1:])
            else:
                raise PlimError("unknown instruction %r" % (kind,))
        return {name: self.crossbar.read_bit(*self._coords(cell))
                for name, cell in program.output_cells.items()}


# -- gate synthesis onto RM3 -----------------------------------------------


def _emit_not(program, source_cell):
    """target <- NOT source, via M(0, !source, 1)."""
    zero = program.allocate()
    program.emit(("reset", zero))
    target = program.allocate()
    program.emit(("set", target))
    program.emit(("rm3", zero, source_cell, target))
    return target


def _emit_and(program, a_cell, b_cell):
    """target <- a AND b = M(a, !(!b), 0)."""
    not_b = _emit_not(program, b_cell)
    target = program.allocate()
    program.emit(("reset", target))
    program.emit(("rm3", a_cell, not_b, target))
    return target


def _emit_or(program, a_cell, b_cell):
    """target <- a OR b = M(a, !(!b), 1)."""
    not_b = _emit_not(program, b_cell)
    target = program.allocate()
    program.emit(("set", target))
    program.emit(("rm3", a_cell, not_b, target))
    return target


def _emit_xor(program, a_cell, b_cell):
    """target <- a XOR b = (a AND !b) OR (!a AND b)."""
    not_a = _emit_not(program, a_cell)
    not_b = _emit_not(program, b_cell)
    left = program.allocate()
    program.emit(("reset", left))
    program.emit(("rm3", a_cell, b_cell, left))        # M(a, !b, 0)
    right = program.allocate()
    program.emit(("reset", right))
    program.emit(("rm3", b_cell, a_cell, right))       # M(b, !a, 0)
    return _emit_or(program, left, right)


def compile_expression(expression, program=None):
    """Lower a Boolean expression tree to an RM3 program.

    Expressions are nested tuples: ``("var", name)``, ``("const", bit)``,
    ``("not", e)``, ``("and"|"or"|"xor", e1, e2)``.  Returns
    ``(program, result_cell)``; inputs are declared on first use.
    """
    program = program if program is not None else PlimProgram()

    def lower(node):
        if not isinstance(node, tuple) or not node:
            raise PlimError("malformed expression node %r" % (node,))
        kind = node[0]
        if kind == "var":
            name = node[1]
            if name not in program.input_cells:
                program.declare_input(name)
            return program.input_cells[name]
        if kind == "const":
            cell = program.allocate()
            program.emit(("set", cell) if node[1] else ("reset", cell))
            return cell
        if kind == "not":
            return _emit_not(program, lower(node[1]))
        if kind in ("and", "or", "xor"):
            left = lower(node[1])
            right = lower(node[2])
            emitters = {"and": _emit_and, "or": _emit_or,
                        "xor": _emit_xor}
            return emitters[kind](program, left, right)
        raise PlimError("unknown expression kind %r" % (kind,))

    result = lower(expression)
    return program, result


def plim_full_adder():
    """A full adder compiled to RM3 (the PLIM papers' showcase).

    Returns a :class:`PlimProgram` with inputs ``a, b, cin`` and outputs
    ``sum, cout``.
    """
    program = PlimProgram()
    a = ("var", "a")
    b = ("var", "b")
    cin = ("var", "cin")
    _program, sum_cell = compile_expression(
        ("xor", ("xor", a, b), cin), program)
    _program, cout_cell = compile_expression(
        ("or", ("and", a, b), ("and", ("xor", a, b), cin)), program)
    program.declare_output("sum", sum_cell)
    program.declare_output("cout", cout_cell)
    return program
