"""Bipolar resistive-switching device (ReRAM cell) model.

The unit cell of the in-memory substrate: a two-terminal device whose
resistance encodes a bit (HRS = logic 0, LRS = logic 1, the usual ReRAM
convention).  Switching is threshold-driven and polarity-dependent:

* a positive voltage above ``v_set`` SETs the device to LRS,
* a negative voltage below ``-v_reset`` RESETs it to HRS,
* anything in between leaves the state untouched (non-volatile storage).

For the analog VMM use-case the device also exposes a continuous
conductance (programmed between ``g_min`` and ``g_max``), with optional
programming variability -- the dominant non-ideality of real arrays.
"""

from ..core.exceptions import ReproError
from ..core.rngs import make_rng

#: Logic-state labels (standard ReRAM convention: low resistance = 1).
HRS = 0
LRS = 1


class MemristorError(ReproError):
    """Raised for unphysical memristor configurations."""


class Memristor:
    """A bipolar threshold-switching resistive cell.

    Parameters
    ----------
    r_on, r_off : float
        LRS / HRS resistances in ohms (``r_off >> r_on``).
    v_set, v_reset : float
        Switching thresholds (both positive numbers; RESET acts on
        negative applied voltage).
    state : int
        Initial logic state (:data:`HRS` or :data:`LRS`).
    """

    def __init__(self, r_on=10e3, r_off=1e6, v_set=1.0, v_reset=1.0,
                 state=HRS):
        if r_on <= 0 or r_off <= r_on:
            raise MemristorError("need 0 < r_on < r_off")
        if v_set <= 0 or v_reset <= 0:
            raise MemristorError("thresholds must be positive")
        if state not in (HRS, LRS):
            raise MemristorError("state must be HRS or LRS")
        self.r_on = float(r_on)
        self.r_off = float(r_off)
        self.v_set = float(v_set)
        self.v_reset = float(v_reset)
        self.state = state
        self._analog_conductance = None
        #: Optional zero-argument observer invoked after every state
        #: change (set by :class:`~repro.inmemory.crossbar.Crossbar` so
        #: its cached conductance matrix invalidates itself no matter
        #: which path mutated the cell).
        self._on_change = None

    def _notify(self):
        if self._on_change is not None:
            self._on_change()

    # -- digital behaviour ---------------------------------------------------

    @property
    def resistance(self):
        """Present resistance (digital states only)."""
        if self._analog_conductance is not None:
            return 1.0 / self._analog_conductance
        return self.r_on if self.state == LRS else self.r_off

    @property
    def conductance(self):
        """Present conductance."""
        return 1.0 / self.resistance

    def apply_voltage(self, voltage):
        """Apply a programming pulse; returns the (possibly new) state.

        Positive above ``v_set`` -> LRS; negative beyond ``v_reset`` ->
        HRS; sub-threshold pulses are non-destructive reads.
        """
        if voltage >= self.v_set:
            self.state = LRS
            self._analog_conductance = None
            self._notify()
        elif voltage <= -self.v_reset:
            self.state = HRS
            self._analog_conductance = None
            self._notify()
        return self.state

    def read_bit(self):
        """The stored logic bit."""
        return self.state

    def write_bit(self, bit):
        """Force a logic state through a full programming pulse."""
        self.apply_voltage(self.v_set if bit else -self.v_reset)
        return self.state

    # -- analog behaviour ------------------------------------------------------

    def program_conductance(self, target, g_min=None, g_max=None,
                            variability=0.0, rng=None):
        """Program an analog conductance in [g_min, g_max].

        ``target`` is clipped into the device's conductance window;
        ``variability`` adds multiplicative log-normal-ish programming
        error (fractional sigma), the standard array non-ideality.
        """
        g_min = g_min if g_min is not None else 1.0 / self.r_off
        g_max = g_max if g_max is not None else 1.0 / self.r_on
        if not 0.0 <= variability < 1.0:
            raise MemristorError("variability must be in [0, 1)")
        clipped = min(max(float(target), g_min), g_max)
        if variability > 0.0:
            rng = make_rng(rng)
            clipped *= 1.0 + variability * float(rng.normal())
            clipped = min(max(clipped, g_min), g_max)
        self._analog_conductance = clipped
        self.state = LRS if clipped > (g_min + g_max) / 2.0 else HRS
        self._notify()
        return clipped

    def __repr__(self):
        return "Memristor(state=%s, R=%.3g)" % (
            "LRS" if self.state == LRS else "HRS", self.resistance)
