"""The resistive crossbar array: storage, stateful logic, analog reads.

Rows (wordlines) and columns (bitlines) with a memristor at every
crossing.  Three capabilities, all used by the in-memory computing
stack:

* **digital storage** -- per-cell bit read/write,
* **stateful logic pulses** -- row/column voltage patterns that make a
  target cell switch conditionally on other cells' states (the
  mechanism behind the PLIM RM3 instruction; the conditional voltage
  divider is evaluated by :meth:`conditional_set`),
* **analog read** -- bitline current summation ``I_j = sum_i V_i G_ij``,
  the physics that makes a crossbar a one-shot vector-matrix multiplier.
"""

import numpy as np

from ..core import telemetry
from ..core.rngs import make_rng
from .memristor import Memristor, MemristorError


class Crossbar:
    """A rows x cols array of memristors.

    Parameters
    ----------
    rows, cols : int
    device_factory : callable, optional
        Zero-argument callable producing fresh :class:`Memristor` cells
        (lets tests inject variability or alternative device corners).
    """

    def __init__(self, rows, cols, device_factory=None):
        if rows < 1 or cols < 1:
            raise MemristorError("crossbar needs positive dimensions")
        self.rows = int(rows)
        self.cols = int(cols)
        factory = device_factory or Memristor
        self.cells = [[factory() for _ in range(self.cols)]
                      for _ in range(self.rows)]
        # Conductance-matrix cache: rebuilding G from the Python cell
        # objects costs O(rows*cols) interpreter work per analog read
        # and used to dominate the VMM hot path.  Every cell notifies
        # the array on any state change, so the cache can never serve a
        # stale matrix -- even when callers program devices directly
        # through :meth:`cell`.
        self._g_cache = None
        for row in self.cells:
            for device in row:
                device._on_change = self.invalidate_conductances
        # Per-array instruments, bound once (no-op singletons when
        # telemetry is disabled): read/write/MAC accounting is the
        # observable the data-movement argument is made with.
        registry = telemetry.get_registry()
        registry.counter("inmemory.crossbar.arrays").inc()
        self._read_counter = registry.counter("inmemory.crossbar.bit_reads")
        self._write_counter = registry.counter("inmemory.crossbar.bit_writes")
        self._analog_read_counter = registry.counter(
            "inmemory.crossbar.analog_reads")
        self._mac_counter = registry.counter("inmemory.crossbar.macs")
        self._pulse_counter = registry.counter(
            "inmemory.crossbar.logic_pulses")

    # -- digital storage -------------------------------------------------------

    def cell(self, row, col):
        """The device at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise MemristorError("cell (%d, %d) out of range" % (row, col))
        return self.cells[row][col]

    def write_bit(self, row, col, bit):
        """Program one cell to a logic state."""
        self._write_counter.inc()
        return self.cell(row, col).write_bit(bit)

    def read_bit(self, row, col):
        """Read one cell's logic state (non-destructive)."""
        self._read_counter.inc()
        return self.cell(row, col).read_bit()

    def write_row(self, row, bits):
        """Program a whole wordline from a bit sequence."""
        if len(bits) != self.cols:
            raise MemristorError("row width mismatch")
        for col, bit in enumerate(bits):
            self.write_bit(row, col, bit)

    def read_row(self, row):
        """Read a whole wordline as a list of bits."""
        return [self.read_bit(row, col) for col in range(self.cols)]

    # -- stateful logic ---------------------------------------------------------

    def conditional_set(self, target, operands, v_program=2.0):
        """One stateful-logic pulse: majority-style conditional switching.

        Models the PLIM primitive: the target cell sees a programming
        voltage divided against the parallel combination of the operand
        cells.  The electrical outcome (solving the divider with the
        device model's thresholds) reduces to: the target switches
        toward the *majority* of the operand states when the drive is
        strong enough to cross its thresholds.

        ``target`` and ``operands`` are (row, col) pairs; the target's
        new state becomes ``majority(operand states + [target state])``
        for an odd total count, which is exactly the resistive-majority
        RM3 update when two operands are supplied.
        """
        self._pulse_counter.inc()
        votes = [self.read_bit(r, c) for r, c in operands]
        votes.append(self.read_bit(*target))
        if len(votes) % 2 == 0:
            raise MemristorError(
                "conditional_set needs an odd vote count, got %d"
                % len(votes))
        majority = 1 if sum(votes) * 2 > len(votes) else 0
        # drive the target through a full pulse toward the majority
        cell = self.cell(*target)
        cell.apply_voltage(v_program if majority else -v_program)
        return majority

    # -- analog read --------------------------------------------------------------

    def invalidate_conductances(self):
        """Drop the cached G matrix (cells call this on state changes)."""
        self._g_cache = None

    def _conductances(self):
        """The cached G matrix (shared array -- do not mutate)."""
        if self._g_cache is None:
            self._g_cache = np.array(
                [[cell.conductance for cell in row] for row in self.cells])
        return self._g_cache

    def conductance_matrix(self):
        """The G matrix (rows x cols) of present conductances."""
        return self._conductances().copy()

    def analog_read(self, row_voltages, noise_sigma=0.0, rng=None):
        """Bitline currents for a wordline voltage vector.

        ``I = V . G`` computed by the array itself in one step --
        the in-memory multiply-accumulate.  ``noise_sigma`` adds
        fractional read noise (sense-amplifier/IR-drop proxy).
        """
        voltages = np.asarray(row_voltages, dtype=float)
        if voltages.shape != (self.rows,):
            raise MemristorError("need one voltage per row")
        self._analog_read_counter.inc()
        self._mac_counter.inc(self.rows * self.cols)
        currents = voltages @ self._conductances()
        if noise_sigma > 0.0:
            rng = make_rng(rng)
            scale = np.abs(currents) + 1e-12
            currents = currents + rng.normal(0.0, noise_sigma,
                                             size=currents.shape) * scale
        return currents

    def analog_read_batch(self, voltage_matrix, noise_sigma=0.0, rng=None):
        """Bitline currents for a stack of wordline voltage vectors.

        ``voltage_matrix`` has shape ``(batch, rows)``; returns
        ``(batch, cols)`` currents.  Row ``b`` of the result is
        bit-identical to ``analog_read(voltage_matrix[b], ...)`` with
        the same generator: each row runs the same matrix-vector product
        (and, with noise, draws its noise vector in the same per-read
        order), so batching is purely an amortization of the Python and
        cache-lookup overhead -- the differential equivalence tier holds
        it to that.
        """
        voltages = np.asarray(voltage_matrix, dtype=float)
        if voltages.ndim != 2 or voltages.shape[1] != self.rows:
            raise MemristorError("need shape (batch, rows) voltages")
        batch = voltages.shape[0]
        self._analog_read_counter.inc(batch)
        self._mac_counter.inc(batch * self.rows * self.cols)
        conductances = self._conductances()
        currents = np.empty((batch, self.cols))
        for index in range(batch):
            currents[index] = voltages[index] @ conductances
        if noise_sigma > 0.0:
            rng = make_rng(rng)
            for index in range(batch):
                scale = np.abs(currents[index]) + 1e-12
                currents[index] = currents[index] + rng.normal(
                    0.0, noise_sigma, size=self.cols) * scale
        return currents

    def __repr__(self):
        return "Crossbar(%dx%d)" % (self.rows, self.cols)
