# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: test bench examples fast-test test-parallel test-resilience test-serve test-backends test-goldens test-equivalence reproduce lint check clean perf-history perf-check profile-demo

test:
	$(PYTHON) -m pytest tests/ -q

# Parallel engine + determinism suite, then the fan-out call sites
# exercised with REPRO_WORKERS=2 as the ambient default.  Sets
# PYTHONPATH=src so the target also works without an editable install.
test-parallel:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/core/test_parallel.py \
		tests/core/test_telemetry_merge.py -q
	REPRO_WORKERS=2 PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/core/test_cli.py \
		tests/memcomputing/test_ensemble.py -q

# Recovery suite: retry/backoff, fault injection, checkpoint/resume,
# then an end-to-end check that a fault plan injected through the
# environment (REPRO_FAULTS) really reaches the engine.
test-resilience:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/core/test_resilience.py \
		tests/core/test_parallel.py -q
	REPRO_FAULTS="0:1:raise" PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -c "from repro.core.parallel import ParallelMap, \
TaskFailure; r = ParallelMap().map(abs, [-1, -2], on_error='return'); \
assert isinstance(r[0], TaskFailure) and r[1] == 2, r; \
print('REPRO_FAULTS env injection: ok')"

# Serving tier: the asyncio job service (admission, coalescing,
# batching, HTTP endpoints) plus its fault-injection survival tests.
# See src/repro/serve/ and docs/serving.md.
test-serve:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/serve -q

# Backend differential tier: serial / pool / loopback-remote execution
# held bit-identical (results, RNG states, telemetry merges, cache
# keys, cross-backend checkpoint resume), plus remote fault injection
# (killed hosts, hangs, dropped connections -> reroute and complete).
# Spawns real worker-host agent processes on loopback TCP.  See
# tests/backends/ and docs/backends.md.
test-backends:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/backends -q

# Golden-claims tier: the paper's headline numbers (FIG4, FIG5, POWER,
# DMM-SAT) pinned with explicit tolerances on small seeded configs.
# Fast enough (< 1 min) to run on every change; see tests/goldens/.
test-goldens:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/goldens -q

# Differential-equivalence tier: the batched fast paths (statevector
# shots, DMM ensemble RHS, oscillator sweeps, tiled VMM) held
# bit-identical (np.array_equal, never allclose) to the retained scalar
# reference paths, across dtypes, batch sizes, and worker counts.  See
# tests/equivalence/ and docs/parallelism.md.
test-equivalence:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/equivalence -q

lint:
	$(PYTHON) -m compileall -q src benchmarks tools examples
	$(PYTHON) tools/lint_no_stdout.py

check: lint test

fast-test:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

reproduce: bench
	@echo "tables written to benchmarks/results/; see EXPERIMENTS.md"

# Perf-regression harness (docs/observability.md): fold the latest
# benchmark JSONs into results/history.jsonl, then diff the newest
# record against the committed baseline.  Run after `make bench`.
perf-history:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/history.py

perf-check: perf-history
	$(PYTHON) tools/check_perf.py

# Attribution profiler smoke run: table on stdout, Chrome trace on disk.
profile-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m repro profile --out repro-profile-trace.json \
		factor 15 --seed 1
	@echo "open repro-profile-trace.json at https://ui.perfetto.dev"

clean:
	rm -rf .pytest_cache benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
