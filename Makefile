# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: test bench examples fast-test reproduce lint check clean

test:
	$(PYTHON) -m pytest tests/ -q

lint:
	$(PYTHON) -m compileall -q src benchmarks tools examples
	$(PYTHON) tools/lint_no_stdout.py

check: lint test

fast-test:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

reproduce: bench
	@echo "tables written to benchmarks/results/; see EXPERIMENTS.md"

clean:
	rm -rf .pytest_cache benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
